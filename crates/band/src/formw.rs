//! Recursive construction of the aggregate `W` — the paper's Algorithm 2.
//!
//! The WY-based SBR leaves one `(W_l, Y_l)` pair per big block, with
//! `Q_total = Q_1·Q_2⋯Q_L` and `Q_l = I − W_l·Y_lᵀ`. For the
//! back-transformation (forming eigenvectors) the blocks are merged
//! pairwise,
//!
//! ```text
//! [W_a | W_b]  →  [W_a | W_b − W_a·(Y_aᵀ·W_b)]
//! ```
//!
//! recursively over halves, so the merge GEMMs have inner dimension that
//! doubles up the tree — 'squeezed' shapes again, which is why the paper
//! measures the WY back-transformation at 320 ms vs 420 ms for ZY (§4.4).

use crate::sbr_wy::LevelWy;
use tcevd_matrix::{Mat, MatRef, Op};
use tcevd_tensorcore::GemmContext;
use tcevd_trace::span;

/// Merge the per-level WY factors into a single `(W, Y)` with
/// `Q_total = I − W·Yᵀ` over the full n×n space (paper Algorithm 2).
/// Infallible given a non-empty level list (asserted on entry).
// tcevd-lint: allow(R4) — pure merge of already-validated factors; no failure mode to surface.
pub fn form_wy(levels: &[LevelWy], n: usize, ctx: &GemmContext) -> (Mat<f32>, Mat<f32>) {
    assert!(!levels.is_empty(), "need at least one WY level");
    let sink = ctx.sink();
    let nlevels = levels.len();
    let _span = span!(sink, "formw", n, nlevels);
    form_rec(levels, n, ctx)
}

fn form_rec(levels: &[LevelWy], n: usize, ctx: &GemmContext) -> (Mat<f32>, Mat<f32>) {
    if let [l] = levels {
        let k = l.w.cols();
        let mut w = Mat::<f32>::zeros(n, k);
        let mut y = Mat::<f32>::zeros(n, k);
        w.view_mut(l.row_offset, 0, l.w.rows(), k)
            .copy_from(l.w.as_ref());
        y.view_mut(l.row_offset, 0, l.y.rows(), k)
            .copy_from(l.y.as_ref());
        return (w, y);
    }
    let (lo, hi) = levels.split_at(levels.len() / 2);
    let ((wa, ya), (wb, yb)) = rayon::join(|| form_rec(lo, n, ctx), || form_rec(hi, n, ctx));
    merge(&wa, &ya, &wb, &yb, ctx)
}

/// `(I − W_a·Y_aᵀ)(I − W_b·Y_bᵀ) = I − [W_a | W_b − W_a(Y_aᵀW_b)]·[Y_a | Y_b]ᵀ`.
fn merge(
    wa: &Mat<f32>,
    ya: &Mat<f32>,
    wb: &Mat<f32>,
    yb: &Mat<f32>,
    ctx: &GemmContext,
) -> (Mat<f32>, Mat<f32>) {
    let n = wa.rows();
    let (ka, kb) = (wa.cols(), wb.cols());
    ctx.sink().add("formw_merges", 1);
    let mut w = Mat::<f32>::zeros(n, ka + kb);
    let mut y = Mat::<f32>::zeros(n, ka + kb);
    w.view_mut(0, 0, n, ka).copy_from(wa.as_ref());
    y.view_mut(0, 0, n, ka).copy_from(ya.as_ref());
    y.view_mut(0, ka, n, kb).copy_from(yb.as_ref());

    // t = Y_aᵀ·W_b (ka×kb)
    let mut t = Mat::<f32>::zeros(ka, kb);
    ctx.gemm(
        "formw_ytw",
        1.0,
        ya.as_ref(),
        Op::Trans,
        wb.as_ref(),
        Op::NoTrans,
        0.0,
        t.as_mut(),
    );
    // W_b' = W_b − W_a·t
    let mut wb2 = wb.clone();
    ctx.gemm(
        "formw_w",
        -1.0,
        wa.as_ref(),
        Op::NoTrans,
        t.as_ref(),
        Op::NoTrans,
        1.0,
        wb2.as_mut(),
    );
    w.view_mut(0, ka, n, kb).copy_from(wb2.as_ref());
    (w, y)
}

/// Apply `Q_total = I − W·Yᵀ` to a matrix from the left:
/// `V ← V − W·(Yᵀ·V)` — the eigenvector back-transformation.
// tcevd-lint: allow(R4) — two fixed GEMMs on shape-checked inputs; infallible by construction.
pub fn apply_q(w: MatRef<'_, f32>, y: MatRef<'_, f32>, v: &mut Mat<f32>, ctx: &GemmContext) {
    let k = w.cols();
    let mut t = Mat::<f32>::zeros(k, v.cols());
    ctx.gemm(
        "backtransform_ytv",
        1.0,
        y,
        Op::Trans,
        v.as_ref(),
        Op::NoTrans,
        0.0,
        t.as_mut(),
    );
    ctx.gemm(
        "backtransform_wv",
        -1.0,
        w,
        Op::NoTrans,
        t.as_ref(),
        Op::NoTrans,
        1.0,
        v.as_mut(),
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::panel::PanelKind;
    use crate::sbr_wy::{sbr_wy, WyOptions};
    use tcevd_matrix::norms::orthogonality_residual;
    use tcevd_tensorcore::Engine;
    use tcevd_testmat::{generate, MatrixType};

    #[test]
    fn formw_reproduces_accumulated_q() {
        let n = 96;
        let a: Mat<f32> = generate(n, MatrixType::Normal, 21).cast();
        let ctx = GemmContext::new(Engine::Sgemm);
        let opts = WyOptions {
            bandwidth: 8,
            block: 16,
            panel: PanelKind::Tsqr,
            accumulate_q: true,
        };
        let r = sbr_wy(&a, &opts, &ctx).expect("sbr reduction");
        assert!(r.levels.len() > 1, "want a multi-level case");

        let (w, y) = form_wy(&r.levels, n, &ctx);
        // Q_formw = I − W·Yᵀ must equal the incrementally accumulated Q.
        let mut q_formw = Mat::<f32>::identity(n, n);
        tcevd_matrix::blas3::gemm(
            -1.0,
            w.as_ref(),
            Op::NoTrans,
            y.as_ref(),
            Op::Trans,
            1.0,
            q_formw.as_mut(),
        );
        let q_acc = r.q.as_ref().unwrap();
        let diff = q_formw.max_abs_diff(q_acc);
        assert!(diff < 1e-4, "diff={diff}");
        assert!(orthogonality_residual(q_formw.as_ref()) / (n as f32) < 1e-5);
    }

    #[test]
    fn apply_q_matches_explicit_multiplication() {
        let n = 64;
        let a: Mat<f32> = generate(n, MatrixType::Uniform, 22).cast();
        let ctx = GemmContext::new(Engine::Sgemm);
        let opts = WyOptions {
            bandwidth: 8,
            block: 32,
            panel: PanelKind::Tsqr,
            accumulate_q: true,
        };
        let r = sbr_wy(&a, &opts, &ctx).expect("sbr reduction");
        let (w, y) = form_wy(&r.levels, n, &ctx);

        let v: Mat<f32> = generate(n, MatrixType::Normal, 23).cast();
        let mut v1 = v.clone();
        apply_q(w.as_ref(), y.as_ref(), &mut v1, &ctx);
        let v2 = tcevd_matrix::blas3::matmul(
            r.q.as_ref().unwrap().as_ref(),
            Op::NoTrans,
            v.as_ref(),
            Op::NoTrans,
        );
        assert!(v1.max_abs_diff(&v2) < 1e-3);
    }

    #[test]
    fn single_level_embedding() {
        let l = LevelWy {
            row_offset: 2,
            w: Mat::from_fn(3, 2, |i, j| (i + j) as f32),
            y: Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f32),
        };
        let ctx = GemmContext::new(Engine::Sgemm);
        let (w, y) = form_wy(&[l], 6, &ctx);
        assert_eq!(w.rows(), 6);
        assert_eq!(w[(0, 0)], 0.0);
        assert_eq!(w[(2, 0)], 0.0 + 0.0); // (i=0,j=0) of source
        assert_eq!(w[(3, 1)], 2.0); // source (1,1)
        assert_eq!(y[(4, 0)], 4.0); // source (2,0)
    }

    #[test]
    fn merge_gemm_shapes_double_up_the_tree() {
        let n = 128;
        let a: Mat<f32> = generate(n, MatrixType::Normal, 24).cast();
        let ctx = GemmContext::new(Engine::Tc).with_trace();
        let opts = WyOptions {
            bandwidth: 8,
            block: 16,
            panel: PanelKind::Tsqr,
            accumulate_q: false,
        };
        let r = sbr_wy(&a, &opts, &ctx).expect("sbr reduction");
        let _ = ctx.take_trace();
        let _ = form_wy(&r.levels, n, &ctx);
        let tr = ctx.take_trace();
        let ks: Vec<usize> = tr
            .iter()
            .filter(|r| r.label == "formw_w")
            .map(|r| r.k)
            .collect();
        assert!(!ks.is_empty());
        // merges near the root have larger inner dimension than the leaves
        assert!(ks.iter().max().unwrap() > ks.iter().min().unwrap());
    }
}
