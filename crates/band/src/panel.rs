//! Panel factorization for band reduction.
//!
//! Both SBR variants factor tall-skinny panels into `Q = I − W·Yᵀ` form.
//! Two engines are provided, matching the paper's Figure 9 ablation:
//!
//! * [`PanelKind::Tsqr`] — the paper's fast panel: parallel TSQR followed by
//!   Householder-vector reconstruction (Algorithm 3).
//! * [`PanelKind::Householder`] — the cuSOLVER-style baseline: classic
//!   unblocked Householder QR (`geqr2`) with the compact-WY `T` factor.
//!
//! Wide panels (fewer rows than columns, the last step of a reduction) fall
//! back to Householder QR in either mode — TSQR requires m ≥ n.

use tcevd_factor::qr::{geqr2, wy_from_packed};
use tcevd_factor::reconstruct::{reconstruct_wy, reconstruct_wy_pivoted, PanelWy};
use tcevd_factor::tsqr::tsqr_with;
use tcevd_matrix::scalar::Scalar;
use tcevd_matrix::{Mat, MatRef};
use tcevd_trace::{span, TraceSink};

/// Which algorithm factors panels.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PanelKind {
    /// TSQR + WY reconstruction (the paper's §5.1–5.2).
    #[default]
    Tsqr,
    /// Plain blocked Householder QR (cuSOLVER `geqrf`-style baseline).
    Householder,
}

/// Result of a panel factorization: `panel = (I − W·Yᵀ)[:, 0..k] · R`, i.e.
/// `(I − Y·Wᵀ)·panel = [R; 0]`, with `k = min(rows, cols)` reflectors.
pub struct FactoredPanel<T: Scalar> {
    /// m×k
    pub w: Mat<T>,
    /// m×k unit lower trapezoidal
    pub y: Mat<T>,
    /// The transformed panel `[R; 0]` (m×cols) to write back.
    pub reduced: Mat<T>,
}

/// Factor an m×b panel into WY form.
pub fn factor_panel<T: Scalar>(panel: MatRef<'_, T>, kind: PanelKind) -> FactoredPanel<T> {
    factor_panel_with(panel, kind, &TraceSink::disabled())
}

/// [`factor_panel`] with observability: emits a `panel` span and tallies
/// `panel_count` plus a `panel_rows` histogram into `sink`.
pub fn factor_panel_with<T: Scalar>(
    panel: MatRef<'_, T>,
    kind: PanelKind,
    sink: &TraceSink,
) -> FactoredPanel<T> {
    let (rows, cols) = (panel.rows(), panel.cols());
    let _span = span!(sink, "panel", rows, cols);
    sink.add("panel_count", 1);
    sink.record("panel_rows", rows as u64);
    sink.add("kernel_flops.panel", tcevd_factor::tsqr_flops(rows, cols));
    factor_panel_impl(panel, kind, sink)
}

/// The panel recovery ladder (rungs 1–3 of the pipeline's `RecoveryPolicy`):
///
/// 1. TSQR + **non-pivoted** LU reconstruction — the paper's fast path.
/// 2. On a degenerate pivot, retry the reconstruction from the *same* TSQR
///    `Q` with **partial-pivoting** LU (counter
///    `recovery.lu_pivot_escalation`).
/// 3. If that also fails, fall back to the plain **Householder** panel,
///    which has no LU step at all (counter
///    `recovery.panel_householder_fallback`).
///
/// TSQR runs once; both reconstructions reuse its `Q` and `R`.
fn factor_panel_impl<T: Scalar>(
    panel: MatRef<'_, T>,
    kind: PanelKind,
    sink: &TraceSink,
) -> FactoredPanel<T> {
    let (m, b) = (panel.rows(), panel.cols());
    let use_tsqr = kind == PanelKind::Tsqr && m >= b && m > 0;
    if use_tsqr {
        let (q, r) = tsqr_with(panel, sink);
        match reconstruct_wy(q.as_ref()) {
            Ok(wy) => return assemble_tsqr_panel(wy, &r, m, b),
            Err(_) => {
                sink.add("recovery.lu_pivot_escalation", 1);
                if let Ok(wy) = reconstruct_wy_pivoted(q.as_ref()) {
                    return assemble_tsqr_panel(wy, &r, m, b);
                }
                sink.add("recovery.panel_householder_fallback", 1);
            }
        }
    }
    householder_panel(panel)
}

/// Combine a reconstructed WY pair with the TSQR `R` factor:
/// `panel = Q·R = (Q·S)·(S·R)`, and `(I − W·Yᵀ)` thin is `Q·S`, so the rows
/// of `R` are scaled by the reconstruction's sign choices.
fn assemble_tsqr_panel<T: Scalar>(
    wy: PanelWy<T>,
    r: &Mat<T>,
    m: usize,
    b: usize,
) -> FactoredPanel<T> {
    let mut reduced = Mat::<T>::zeros(m, b);
    for (i, &s) in wy.signs.iter().enumerate().take(b) {
        for j in i..b {
            reduced.set(i, j, r.get(i, j) * s);
        }
    }
    FactoredPanel {
        w: wy.w,
        y: wy.y,
        reduced,
    }
}

fn householder_panel<T: Scalar>(panel: MatRef<'_, T>) -> FactoredPanel<T> {
    let (m, b) = (panel.rows(), panel.cols());
    let mut packed = panel.to_owned();
    let tau = geqr2(packed.as_mut());
    let (w, y) = wy_from_packed(packed.as_ref(), &tau);
    // reduced = R part (upper triangle of packed, top k rows), zeros below.
    let k = m.min(b);
    let mut reduced = Mat::<T>::zeros(m, b);
    for j in 0..b {
        for i in 0..=j.min(k - 1) {
            reduced.set(i, j, packed.get(i, j));
        }
    }
    FactoredPanel { w, y, reduced }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcevd_matrix::blas3::{gemm, matmul};
    use tcevd_matrix::norms::orthogonality_residual;
    use tcevd_matrix::Op;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat<f64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        Mat::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn verify(panel: &Mat<f64>, f: &FactoredPanel<f64>, tol: f64) {
        let m = panel.rows();
        // Q = I − W·Yᵀ orthogonal
        let mut q = Mat::<f64>::identity(m, m);
        gemm(
            -1.0,
            f.w.as_ref(),
            Op::NoTrans,
            f.y.as_ref(),
            Op::Trans,
            1.0,
            q.as_mut(),
        );
        assert!(orthogonality_residual(q.as_ref()) < tol * m as f64);
        // Qᵀ·panel = reduced
        let qt_p = matmul(q.as_ref(), Op::Trans, panel.as_ref(), Op::NoTrans);
        assert!(qt_p.max_abs_diff(&f.reduced) < tol * m as f64);
        // reduced is upper triangular
        for j in 0..panel.cols() {
            for i in j + 1..m {
                assert_eq!(f.reduced[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn tsqr_panel_tall() {
        let p = rand_mat(120, 8, 1);
        let f = factor_panel(p.as_ref(), PanelKind::Tsqr);
        verify(&p, &f, 1e-12);
    }

    #[test]
    fn householder_panel_tall() {
        let p = rand_mat(120, 8, 2);
        let f = factor_panel(p.as_ref(), PanelKind::Householder);
        verify(&p, &f, 1e-12);
    }

    #[test]
    fn both_kinds_agree_on_band_content() {
        // R factors agree up to row signs → R·Rᵀ... simpler: |R| entries agree
        let p = rand_mat(60, 6, 3);
        let f1 = factor_panel(p.as_ref(), PanelKind::Tsqr);
        let f2 = factor_panel(p.as_ref(), PanelKind::Householder);
        for j in 0..6 {
            for i in 0..=j {
                assert!(
                    (f1.reduced[(i, j)].abs() - f2.reduced[(i, j)].abs()).abs() < 1e-11,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn wide_panel_falls_back() {
        let p = rand_mat(4, 9, 4);
        let f = factor_panel(p.as_ref(), PanelKind::Tsqr);
        verify(&p, &f, 1e-12);
        assert_eq!(f.w.cols(), 4); // min(m, b) reflectors
    }

    #[test]
    fn single_row_panel() {
        let p = rand_mat(1, 3, 5);
        let f = factor_panel(p.as_ref(), PanelKind::Tsqr);
        // 1×3: Q is 1×1 = ±1; reduced = ±panel
        assert_eq!(f.w.cols(), 1);
        verify(&p, &f, 1e-13);
    }

    #[test]
    fn pivot_escalation_rung_fires_once() {
        // Poison the non-pivoted LU: the ladder must escalate to partial
        // pivoting (counter fires once) and still produce a valid panel.
        let p = rand_mat(80, 8, 7);
        let sink = TraceSink::enabled();
        tcevd_factor::fault::poison_nopivot_pivot(2);
        let f = factor_panel_with(p.as_ref(), PanelKind::Tsqr, &sink);
        tcevd_factor::fault::clear();
        assert_eq!(sink.counter("recovery.lu_pivot_escalation"), 1);
        assert_eq!(sink.counter("recovery.panel_householder_fallback"), 0);
        verify(&p, &f, 1e-12);
    }

    #[test]
    fn householder_fallback_rung_fires_once() {
        // Poison both LU variants: the ladder must land on the Householder
        // panel, recording both escalations exactly once.
        let p = rand_mat(80, 8, 8);
        let sink = TraceSink::enabled();
        tcevd_factor::fault::poison_nopivot_pivot(0);
        tcevd_factor::fault::fail_next_partial_pivot(1);
        let f = factor_panel_with(p.as_ref(), PanelKind::Tsqr, &sink);
        tcevd_factor::fault::clear();
        assert_eq!(sink.counter("recovery.lu_pivot_escalation"), 1);
        assert_eq!(sink.counter("recovery.panel_householder_fallback"), 1);
        verify(&p, &f, 1e-12);
    }

    #[test]
    fn f32_panel_accuracy() {
        let p64 = rand_mat(256, 16, 6);
        let p: Mat<f32> = p64.cast();
        let f = factor_panel(p.as_ref(), PanelKind::Tsqr);
        let m = 256;
        let mut q = Mat::<f32>::identity(m, m);
        gemm(
            -1.0f32,
            f.w.as_ref(),
            Op::NoTrans,
            f.y.as_ref(),
            Op::Trans,
            1.0,
            q.as_mut(),
        );
        assert!(orthogonality_residual(q.as_ref()) < 1e-3);
    }
}
