//! Shared types and helpers for the band-reduction drivers.

use crate::panel::PanelKind;
use tcevd_matrix::{Mat, MatRef};
use tcevd_tensorcore::GemmContext;

/// Configuration for a successive band reduction run.
#[derive(Copy, Clone, Debug)]
pub struct SbrOptions {
    /// Target bandwidth `b` (also the panel width).
    pub bandwidth: usize,
    /// Panel factorization algorithm (TSQR vs Householder baseline).
    pub panel: PanelKind,
    /// Accumulate the full orthogonal transform `Q` (needed for
    /// eigenvectors and for the backward-error metric).
    pub accumulate_q: bool,
}

impl Default for SbrOptions {
    fn default() -> Self {
        SbrOptions {
            bandwidth: 32,
            panel: PanelKind::Tsqr,
            accumulate_q: false,
        }
    }
}

/// Output of a band reduction: `A = Q·B·Qᵀ` with `B` symmetric banded.
pub struct SbrResult {
    /// The band matrix (full dense storage; entries outside the band are
    /// exact zeros).
    pub band: Mat<f32>,
    /// The accumulated orthogonal similarity (if requested).
    pub q: Option<Mat<f32>>,
}

/// Largest |entry| outside the band of half-width `b` — the structural
/// invariant every SBR must satisfy (exactly 0 by construction here).
pub fn max_outside_band(a: MatRef<'_, f32>, b: usize) -> f32 {
    let n = a.rows();
    let mut m = 0.0f32;
    for j in 0..n {
        for i in 0..n {
            if i.abs_diff(j) > b {
                m = m.max(a.get(i, j).abs());
            }
        }
    }
    m
}

/// Zero out everything outside the band (used to make the invariant exact
/// after a numerically-banded reduction).
pub fn clip_to_band(a: &mut Mat<f32>, b: usize) {
    let n = a.rows();
    for j in 0..n {
        for i in 0..n {
            if i.abs_diff(j) > b {
                a.set(i, j, 0.0);
            }
        }
    }
}

/// Average the two triangles to restore exact symmetry (controls roundoff
/// drift between the two one-sided GEMM updates).
pub fn symmetrize(a: &mut Mat<f32>) {
    let n = a.rows();
    for j in 0..n {
        for i in 0..j {
            let s = 0.5 * (a.get(i, j) + a.get(j, i));
            a.set(i, j, s);
            a.set(j, i, s);
        }
    }
}

/// `q_cols ← q_cols·(I − W·Yᵀ)`: right-accumulate a block reflector into the
/// global `Q`. `q_cols` is the n×m block of `Q`'s columns the reflector acts
/// on; `w`, `y` are m×k.
pub fn accumulate_q_right(
    ctx: &GemmContext,
    q_cols: tcevd_matrix::MatMut<'_, f32>,
    w: MatRef<'_, f32>,
    y: MatRef<'_, f32>,
) {
    use tcevd_matrix::Op;
    let n = q_cols.rows();
    let k = w.cols();
    // t = Q_c·W (n×k)
    let mut t = Mat::<f32>::zeros(n, k);
    ctx.gemm(
        "q_acc_qw",
        1.0,
        q_cols.as_ref(),
        Op::NoTrans,
        w,
        Op::NoTrans,
        0.0,
        t.as_mut(),
    );
    // Q_c ← Q_c − t·Yᵀ
    ctx.gemm(
        "q_acc_update",
        -1.0,
        t.as_ref(),
        Op::NoTrans,
        y,
        Op::Trans,
        1.0,
        q_cols,
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcevd_matrix::norms::orthogonality_residual;
    use tcevd_matrix::Op;
    use tcevd_tensorcore::Engine;

    #[test]
    fn band_helpers() {
        let mut a = Mat::<f32>::from_fn(5, 5, |i, j| (i * 5 + j + 1) as f32);
        assert!(max_outside_band(a.as_ref(), 1) > 0.0);
        clip_to_band(&mut a, 1);
        assert_eq!(max_outside_band(a.as_ref(), 1), 0.0);
        assert!(a[(1, 0)] != 0.0); // band kept
        assert_eq!(a[(2, 0)], 0.0);
    }

    #[test]
    fn symmetrize_averages() {
        let mut a = Mat::<f32>::from_rows(2, 2, &[1.0, 2.0, 4.0, 5.0]);
        symmetrize(&mut a);
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn q_accumulation_applies_reflector() {
        // Q starts as identity; accumulating (I − W·Yᵀ) must reproduce it.
        let n = 12;
        let k = 3;
        let mut s = 5u64;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let w = Mat::<f32>::from_fn(n, k, |_, _| next());
        let y = Mat::<f32>::from_fn(n, k, |_, _| next());
        let mut q = Mat::<f32>::identity(n, n);
        let ctx = GemmContext::new(Engine::Sgemm);
        accumulate_q_right(&ctx, q.as_mut(), w.as_ref(), y.as_ref());
        let mut want = Mat::<f32>::identity(n, n);
        tcevd_matrix::blas3::gemm(
            -1.0,
            w.as_ref(),
            Op::NoTrans,
            y.as_ref(),
            Op::Trans,
            1.0,
            want.as_mut(),
        );
        assert!(q.max_abs_diff(&want) < 1e-6);
        let _ = orthogonality_residual(q.as_ref()); // smoke: callable
    }
}
