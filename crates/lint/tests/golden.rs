//! Golden-file tests for the lint engine, plus the live-workspace
//! self-check: the real repository must lint clean at all times.
//!
//! Each fixture under `tests/fixtures/` starts with a
//! `// lint-fixture-path: <fake workspace path>` header so rule scoping
//! (hot-path lists, precision boundary, crate roots) applies to it, and
//! pairs with a `.expected` file holding the exact diagnostics.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use tcevd_lint::{analyze_files, lint_source, lint_workspace, parse_registry, rules, Registry};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A two-label registry shared by all fixtures.
fn fixture_registry() -> Registry {
    parse_registry(r#"pub const GEMM_LABELS: &[&str] = &["sbr_panel_update", "zy_aw"];"#)
}

fn run_fixture(name: &str) -> (Vec<String>, Vec<String>) {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("fixture {name}.rs unreadable: {e}"));
    let fake_path = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// lint-fixture-path: "))
        .unwrap_or_else(|| panic!("fixture {name}.rs lacks a lint-fixture-path header"))
        .trim()
        .to_string();
    let reg = fixture_registry();
    let mut used = BTreeSet::new();
    let mut out = Vec::new();
    lint_source(&fake_path, &src, &reg, &mut used, &mut out);
    out.sort();
    let got = out.iter().map(|d| d.to_string()).collect();
    let expected = std::fs::read_to_string(dir.join(format!("{name}.expected")))
        .unwrap_or_else(|e| panic!("golden {name}.expected unreadable: {e}"))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    (got, expected)
}

/// Multi-file fixtures for the call-graph rules (R8/R9): the fixture is
/// split on `//@file: <fake path>` marker lines into separate sources,
/// and every line after a marker is numbered from 1 within its section.
fn run_multi_fixture(name: &str) -> (Vec<String>, Vec<String>) {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("fixture {name}.rs unreadable: {e}"));
    let mut files: Vec<(String, String)> = Vec::new();
    for line in src.lines() {
        if let Some(p) = line.strip_prefix("//@file:") {
            files.push((p.trim().to_string(), String::new()));
        } else {
            let (_, body) = files
                .last_mut()
                .unwrap_or_else(|| panic!("fixture {name}.rs must start with a //@file: marker"));
            body.push_str(line);
            body.push('\n');
        }
    }
    let reg = fixture_registry();
    let mut used = BTreeSet::new();
    let mut out = analyze_files(&files, &reg, &mut used);
    out.sort();
    let got = out.iter().map(|d| d.to_string()).collect();
    let expected = std::fs::read_to_string(dir.join(format!("{name}.expected")))
        .unwrap_or_else(|e| panic!("golden {name}.expected unreadable: {e}"))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    (got, expected)
}

fn assert_golden(name: &str) {
    let (got, expected) = run_fixture(name);
    assert_eq!(
        got,
        expected,
        "fixture {name}: diagnostics diverge from {name}.expected\n\
         got:\n  {}\nexpected:\n  {}",
        got.join("\n  "),
        expected.join("\n  ")
    );
}

#[test]
fn r1_gemm_label_fixture_matches_golden() {
    assert_golden("r1");
}

#[test]
fn r2_precision_boundary_fixture_matches_golden() {
    assert_golden("r2");
}

#[test]
fn r3_hot_path_fixture_matches_golden() {
    assert_golden("r3");
}

#[test]
fn r4_result_surface_fixture_matches_golden() {
    assert_golden("r4");
}

#[test]
fn r5_forbid_unsafe_fixture_matches_golden() {
    assert_golden("r5");
}

#[test]
fn r7_serve_hygiene_fixture_matches_golden() {
    assert_golden("r7");
}

#[test]
fn clean_fixture_produces_no_findings() {
    assert_golden("clean");
}

/// R8/R9 are whole-workspace call-graph rules, so their fixtures span
/// multiple `//@file:` sections and run through `analyze_files`.
fn assert_multi_golden(name: &str) {
    let (got, expected) = run_multi_fixture(name);
    assert_eq!(
        got,
        expected,
        "fixture {name}: diagnostics diverge from {name}.expected\n\
         got:\n  {}\nexpected:\n  {}",
        got.join("\n  "),
        expected.join("\n  ")
    );
}

#[test]
fn r8_transitive_panic_fixture_matches_golden() {
    assert_multi_golden("r8");
}

#[test]
fn r8_unreachable_panic_stays_silent() {
    // The fixture's `never_called_from_hot_paths` contains the identical
    // `.unwrap()` as `helper_bad` but has no hot-path caller: exactly one
    // R8 finding proves reachability (not mere presence) is what fires.
    let (got, _) = run_multi_fixture("r8");
    assert_eq!(
        got.iter().filter(|l| l.contains("R8")).count(),
        1,
        "{got:?}"
    );
}

#[test]
fn r9_cancel_seam_fixture_matches_golden() {
    assert_multi_golden("r9");
}

#[test]
fn r10_determinism_fixture_matches_golden() {
    assert_golden("r10");
}

#[test]
fn r11_lock_discipline_fixture_matches_golden() {
    assert_golden("r11");
}

#[test]
fn w1_dead_waiver_fixture_matches_golden() {
    assert_golden("w1");
}

/// R6 is a workspace-level cross-registry rule, so its fixture runs through
/// `parse_costs` + `r6_cost_registry` directly rather than `lint_source`.
#[test]
fn r6_cost_registry_fixture_matches_golden() {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join("r6.rs"))
        .unwrap_or_else(|e| panic!("fixture r6.rs unreadable: {e}"));
    let costs = tcevd_lint::parse_costs(&src);
    let mut out = Vec::new();
    rules::r6_cost_registry(&fixture_registry(), &costs, &mut out);
    out.sort();
    let got: Vec<String> = out.iter().map(|d| d.to_string()).collect();
    let expected: Vec<String> = std::fs::read_to_string(dir.join("r6.expected"))
        .unwrap_or_else(|e| panic!("golden r6.expected unreadable: {e}"))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    assert_eq!(
        got,
        expected,
        "fixture r6: diagnostics diverge from r6.expected\n\
         got:\n  {}\nexpected:\n  {}",
        got.join("\n  "),
        expected.join("\n  ")
    );
}

#[test]
fn r6_missing_cost_registry_is_one_finding() {
    let mut out = Vec::new();
    rules::r6_cost_registry(&fixture_registry(), &tcevd_lint::parse_costs(""), &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "R6");
    assert!(
        out[0].message.contains("missing or empty"),
        "{}",
        out[0].message
    );
}

#[test]
fn unused_registry_entries_are_flagged() {
    let reg = parse_registry(
        r#"pub const GEMM_LABELS: &[&str] = &[
    "sbr_panel_update",
    "dead_entry",
];"#,
    );
    let mut used = BTreeSet::new();
    used.insert("sbr_panel_update".to_string());
    let mut out = Vec::new();
    rules::r1_unused_entries(&reg, &used, &mut out);
    assert_eq!(
        out.len(),
        1,
        "exactly the dead entry should be flagged: {out:?}"
    );
    assert_eq!(out[0].rule, "R1");
    assert_eq!(out[0].line, 3);
    assert!(
        out[0].message.contains("\"dead_entry\""),
        "message should name the dead entry: {}",
        out[0].message
    );
}

/// The self-check: linting the actual workspace this crate lives in must
/// produce zero findings. Any regression in the real pipeline sources
/// fails this test before CI even reaches the dedicated lint job.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root);
    assert!(
        diags.is_empty(),
        "live workspace has lint findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
