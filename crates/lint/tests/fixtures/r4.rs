// lint-fixture-path: crates/core/src/svd.rs
//! R4 fixture: Result-returning public surface.

pub fn good(a: MatRef<f32>) -> Result<Vec<f32>, EvdError> {
    Ok(Vec::new())
}

pub fn bad(a: MatRef<f32>) -> Vec<f32> {
    Vec::new()
}

pub(crate) fn internal(x: f32) -> f32 {
    x
}

// tcevd-lint: allow(R4) — infallible by construction
pub fn waived_helper() -> usize {
    0
}

fn private_helper() -> f32 {
    0.0
}
