// lint-fixture-path: crates/serve/src/service.rs
//! R7 fixture: service-layer hygiene (the R3 bar over `crates/serve/`).

fn schedule(queue: &[u64], table: &Table) -> u64 {
    let first = queue[0];
    let entry = table.get(&first).unwrap();
    if entry.is_poisoned() {
        panic!("poisoned job");
    }
    // tcevd-lint: allow(R7) — id validated at admission
    let again = queue[1];
    first + again
}

fn fine(queue: &[u64], lock: &std::sync::Mutex<u64>) -> Option<u64> {
    // the poison-recovery idiom is a different ident — must not fire
    let v = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    queue.first().map(|q| q + *v)
}

#[test]
fn tests_may_index_and_unwrap() {
    let q = vec![3u64];
    assert_eq!(q.first().copied().unwrap(), q[0]);
}
