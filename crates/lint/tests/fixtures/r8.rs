//@file: crates/core/src/pipeline.rs
//! R8 fixture, hot-path side: this file is in R3_FILES, so its functions
//! are call-graph roots. It contains no panic itself (R3 stays silent).

pub fn run_pipeline(cfg: &Config) -> Result<(), Error> {
    helper_bad(cfg);
    helper_good(cfg)
}
//@file: crates/factor/src/util.rs
//! R8 fixture, helper side: not a hot-path file, so only *reachable*
//! panic sites fire — with the discovery call chain in the message.

pub fn helper_bad(cfg: &Config) {
    cfg.flag.unwrap();
}

pub fn helper_good(cfg: &Config) -> Result<(), Error> {
    deeper(cfg)
}

fn deeper(_cfg: &Config) -> Result<(), Error> {
    Ok(())
}

pub fn never_called_from_hot_paths(cfg: &Config) {
    cfg.flag.unwrap();
}
