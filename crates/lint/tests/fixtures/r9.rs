//@file: crates/band/src/sbr_wy.rs
//! R9 fixture, loop side: both loops transitively perform GEMM-scale
//! work through `trailing_update`; only the second reaches a cancel
//! check within the iteration.

pub fn reduce(ctx: &GemmContext, n: usize) -> Result<(), Error> {
    let mut i = 0;
    while i < n {
        trailing_update(ctx);
        i += 1;
    }
    let mut j = 0;
    while j < n {
        if ctx.cancel_requested() {
            return Err(Error::Cancelled);
        }
        trailing_update(ctx);
        j += 1;
    }
    Ok(())
}
//@file: crates/tensorcore/src/dispatch.rs
//! R9 fixture, dispatch side: the GEMM-scale work and the cancel check
//! live outside the R9 file list and are only reached through calls.

pub struct GemmContext;

impl GemmContext {
    pub fn cancel_requested(&self) -> bool {
        false
    }
    pub fn gemm(&self, label: &str, n: usize) {
        let _ = (label, n);
    }
}

pub fn trailing_update(ctx: &GemmContext) {
    ctx.gemm("sbr_panel_update", 64);
}
