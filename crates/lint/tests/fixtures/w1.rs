// lint-fixture-path: crates/core/src/misc.rs
//! W1 fixture: a waiver must suppress at least one finding — the first
//! waiver below covers a real R2 hit, the second suppresses nothing.

// tcevd-lint: allow(R2) — boundary experiment, reviewed
pub fn lossy() -> f32 {
    round_through_f16(1.0f32)
}

// tcevd-lint: allow(R3) — dead: this file is not on the hot-path list
pub fn harmless() -> u32 {
    42
}
