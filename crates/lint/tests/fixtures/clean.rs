// lint-fixture-path: crates/band/src/panel.rs
//! Clean fixture: a compliant hot-path module with zero findings.

pub(crate) fn scale(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

fn panel_update(ctx: &GemmContext, a: MatRef<f32>, b: MatRef<f32>, c: MatMut<f32>) {
    ctx.gemm("sbr_panel_update", a, b, 1.0, c, 0.0);
}
