// lint-fixture-path: crates/band/src/bulge.rs
//! R1 fixture: GEMM label discipline.

fn chase(ctx: &GemmContext, a: MatRef<f32>, b: MatRef<f32>, mut c: MatMut<f32>) {
    ctx.gemm("zy_aw", a, b, 1.0, c.as_mut(), 0.0);
    ctx.gemm("mystery_step", a, b, 1.0, c.as_mut(), 0.0);
    let label = "zy_aw";
    ctx.gemm(label, a, b, 1.0, c.as_mut(), 0.0);
    ctx.syr2k_update(label, a, b, c.as_mut());
    // tcevd-lint: allow(R1) — fixture waiver demonstration
    ctx.gemm("unregistered_but_waived", a, b, 1.0, c.as_mut(), 0.0);
}

#[test]
fn test_sites_are_exempt() {
    ctx.gemm("anything_goes", a, b, 1.0, c, 0.0);
}
