// lint-fixture-path: crates/perfmodel/src/lib.rs
//! R5 fixture: crate roots must forbid unsafe code.

pub fn read_raw(p: *const f32) -> f32 {
    unsafe { *p }
}
