// lint-fixture-path: crates/core/src/reduce.rs
//! R10 fixture: determinism discipline — sync primitives in parallel
//! regions (a), hash-order iteration (b), counter namespaces (c).

pub fn bad_parallel_sum(xs: &[f32], total: &AtomicU64) {
    for_each_chunk(xs, 4, |chunk| {
        total.fetch_add(chunk.len() as u64, Ordering::Relaxed);
    });
}

pub fn good_parallel_sum(xs: &[f32], per_chunk: &mut [u64]) {
    for_each_chunk_slots(xs, per_chunk);
}

pub fn bad_hash_iter(hmap: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in hmap {
        sum += v;
    }
    sum + hmap.values().sum::<u64>()
}

pub fn good_tree_iter(tmap: &BTreeMap<String, u64>) -> u64 {
    tmap.values().sum::<u64>()
}

pub fn bad_latency_counter(sink: &TraceSink, t0: Instant) {
    sink.record("gemm.batch_us", t0.elapsed().as_micros() as u64);
}

pub fn good_latency_counter(sink: &TraceSink, t0: Instant) {
    sink.record("time.gemm.batch_us", t0.elapsed().as_micros() as u64);
    sink.add("gemm.calls", 1);
}
