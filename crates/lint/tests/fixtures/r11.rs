// lint-fixture-path: crates/serve/src/sched.rs
//! R11 fixture: lock/condvar discipline in the service layer — order
//! violations (a), condvar waits outside loops (b), raw `.lock()` (c).

pub fn bad_lock_order(shared: &Shared) {
    let st = lock(&shared.state);
    let c = lock(&shared.cache);
    drop(c);
    drop(st);
    let w = lock(&shared.workers);
    let again = lock(&shared.state);
    drop(again);
    drop(w);
}

pub fn bad_wait(shared: &Shared) {
    let st = lock(&shared.state);
    let _unused = shared.done_cv.wait(st);
}

pub fn bad_raw_lock(shared: &Shared) -> u64 {
    let g = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    *g
}

pub fn good_discipline(shared: &Shared) {
    let st = lock(&shared.state);
    let c = lock(&shared.cache);
    drop(c);
    drop(st);
    loop {
        let guard = lock(&shared.state);
        let _g = shared.done_cv.wait(guard);
        break;
    }
}
