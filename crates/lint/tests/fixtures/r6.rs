// lint-fixture-path: crates/prof/src/costs.rs
// R6 fixture: a cost registry that covers "sbr_panel_update" but not
// "zy_aw" (missing entry), and carries a dead "stale_label" entry.
pub struct GemmCost {
    pub label: &'static str,
    pub accumulates: bool,
}

pub const GEMM_COSTS: &[GemmCost] = &[
    GemmCost { label: "sbr_panel_update", accumulates: true },
    GemmCost { label: "stale_label", accumulates: false },
];
