// lint-fixture-path: crates/band/src/common.rs
//! R3 fixture: hot-path hygiene.

fn hot(v: &[f32], m: &Mat) -> f32 {
    let a = v[0];
    let b = v.first().unwrap();
    let c = m.value().expect("present");
    if v.is_empty() {
        panic!("empty input");
    }
    // tcevd-lint: allow(R3) — bounds established by caller contract
    let d = v[1];
    a + b + c + d
}

fn fine(v: &[f32]) -> Option<f32> {
    v.first().copied()
}

#[test]
fn tests_may_index_and_unwrap() {
    let v = vec![1.0];
    assert_eq!(v.first().copied().unwrap(), v[0]);
}
