// lint-fixture-path: crates/core/src/metrics.rs
//! R2 fixture: precision-boundary containment.

fn lossy(x: f32) -> f32 {
    let y = round_through_f16(x);
    let z = F16::from_f32(x).to_f32();
    let w = Wide::from_f32(x);
    // tcevd-lint: allow(R2) — demonstrating a reviewed escape hatch
    let v = round_to_tf32(x);
    y + z + w + v
}

#[cfg(test)]
mod tests {
    fn truncating_in_tests_is_fine(m: MatMut<f32>) {
        truncate_f16(m);
    }
}
