#![forbid(unsafe_code)]
//! `tcevd-lint` — repo-specific static analysis for the Tensor-Core EVD
//! workspace.
//!
//! The engine is deliberately dependency-free: a hand-rolled token-level
//! lexer ([`lexer`]) feeds a small set of rules ([`rules`]) that encode
//! invariants no off-the-shelf linter knows about:
//!
//! - **R1** every `GemmContext::gemm` / `syr2k_update` call site passes a
//!   static string label drawn from the registry in
//!   `crates/tensorcore/src/labels.rs`; the dry-run trace model uses the
//!   same label set; no registry entry is dead.
//! - **R2** lossy precision conversions (`round_through_f16`,
//!   `truncate_f16`, `round_to_tf32`, `F16::from_f32`) appear only inside
//!   the precision boundary (`crates/matrix/src/f16.rs` and
//!   `crates/tensorcore`).
//! - **R3** hot-path files contain no `unwrap`/`expect`/`panic!`-family
//!   macros and no `[...]` indexing outside test code.
//! - **R4** public functions in pipeline modules return `Result`.
//! - **R5** every crate root carries `#![forbid(unsafe_code)]` and the
//!   `unsafe` keyword never appears.
//! - **R6** every `GEMM_LABELS` entry has a flop-cost entry in the
//!   `GEMM_COSTS` registry (`crates/prof/src/costs.rs`), and no cost entry
//!   is dead (names a label the table no longer carries).
//! - **R7** the R3 hygiene bar extended to the service layer
//!   (`crates/serve/`): the scheduler holds other jobs' work, so its
//!   non-test code must never `unwrap`, `panic!`, or `[...]`-index.
//!
//! Findings can be waived line-locally with a
//! `// tcevd-lint: allow(R3)` comment; the waiver covers the comment's
//! line and the two lines after it.
//!
//! Run it with `cargo run -p tcevd-lint`; it exits non-zero when any
//! diagnostic fires and prints `file:line: RULE: message` lines.

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use lexer::{Kind, Lexed};

/// One lint finding, addressed by workspace-relative path (forward
/// slashes) and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The GEMM label registry parsed out of `crates/tensorcore/src/labels.rs`:
/// every string literal inside the `GEMM_LABELS` array, with its line.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Workspace-relative path of the registry source file.
    pub path: String,
    /// `(label, line)` pairs in declaration order.
    pub labels: Vec<(String, usize)>,
}

/// Path of the registry source, relative to the workspace root.
pub const REGISTRY_PATH: &str = "crates/tensorcore/src/labels.rs";

/// Parse the `GEMM_LABELS` array from registry source text.
///
/// Token-level: finds the `GEMM_LABELS` identifier, skips to the first `[`
/// after it, and collects every string literal until the matching `]`.
pub fn parse_registry(src: &str) -> Registry {
    let lx = lexer::lex(src, false);
    let toks = &lx.tokens;
    let mut reg = Registry {
        path: REGISTRY_PATH.to_string(),
        labels: Vec::new(),
    };
    let Some(start) = toks.iter().position(|t| t.is_ident("GEMM_LABELS")) else {
        return reg;
    };
    // Skip past the `=` so the `[` in the `&[&str]` type annotation is not
    // mistaken for the array opener.
    let Some(eq) = toks[start..].iter().position(|t| t.is_punct('=')) else {
        return reg;
    };
    let Some(open) = toks[start + eq..].iter().position(|t| t.is_punct('[')) else {
        return reg;
    };
    let mut depth = 0usize;
    for t in &toks[start + eq + open..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == Kind::Str && depth == 1 {
            reg.labels.push((t.text.clone(), t.line));
        }
    }
    reg
}

/// Path of the flop-cost registry source, relative to the workspace root.
pub const COSTS_PATH: &str = "crates/prof/src/costs.rs";

/// Parse the `GEMM_COSTS` array from cost-registry source text.
///
/// Token-level, like [`parse_registry`], but the entries are `GemmCost`
/// struct literals, so every string literal anywhere inside the array
/// initializer counts (labels are the only strings a cost entry carries).
pub fn parse_costs(src: &str) -> Registry {
    let lx = lexer::lex(src, false);
    let toks = &lx.tokens;
    let mut reg = Registry {
        path: COSTS_PATH.to_string(),
        labels: Vec::new(),
    };
    let Some(start) = toks.iter().position(|t| t.is_ident("GEMM_COSTS")) else {
        return reg;
    };
    let Some(eq) = toks[start..].iter().position(|t| t.is_punct('=')) else {
        return reg;
    };
    let Some(open) = toks[start + eq..].iter().position(|t| t.is_punct('[')) else {
        return reg;
    };
    let mut depth = 0usize;
    for t in &toks[start + eq + open..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == Kind::Str && depth >= 1 {
            reg.labels.push((t.text.clone(), t.line));
        }
    }
    reg
}

/// True when a workspace-relative path holds code that is test-only in its
/// entirety (integration tests, benches, examples): R1's literal-label and
/// R3's hygiene requirements do not apply there.
pub fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Lint one source file given its workspace-relative path. `used` collects
/// the GEMM labels this file consumes (for the registry dead-entry check).
pub fn lint_source(
    path: &str,
    src: &str,
    reg: &Registry,
    used: &mut BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let lx: Lexed = lexer::lex(src, is_test_path(path));
    rules::r1_call_sites(path, &lx, reg, used, out);
    rules::r1_trace_model(path, &lx, reg, out);
    rules::r2_precision_boundary(path, &lx, out);
    rules::r3_hot_path(path, &lx, out);
    rules::r7_serve_hygiene(path, &lx, out);
    rules::r4_result_surface(path, &lx, out);
    if path.ends_with("src/lib.rs") {
        rules::r5_forbid_unsafe_attr(path, &lx, out);
    }
    rules::r5_no_unsafe(path, &lx, out);
}

/// Every `.rs` file the lint covers, workspace-relative with forward
/// slashes, sorted. Skips `target/`, hidden directories, and the lint
/// crate itself (it must mention banned tokens to detect them).
pub fn workspace_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if p == root.join("crates").join("lint") {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                if let Some(rel) = relative(root, &p) {
                    files.push(rel);
                }
            }
        }
    }
    files.sort();
    files
}

fn relative(root: &Path, p: &Path) -> Option<String> {
    let rel = p.strip_prefix(root).ok()?;
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Lint the whole workspace rooted at `root`. Returns all diagnostics,
/// sorted by (file, line, rule).
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let reg_src = std::fs::read_to_string(root.join(REGISTRY_PATH)).unwrap_or_default();
    let reg = parse_registry(&reg_src);
    if reg.labels.is_empty() {
        out.push(Diagnostic {
            file: REGISTRY_PATH.to_string(),
            line: 1,
            rule: "R1",
            message: "GEMM label registry is missing or empty".to_string(),
        });
        return out;
    }
    let mut used = BTreeSet::new();
    for rel in workspace_files(root) {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        lint_source(&rel, &src, &reg, &mut used, &mut out);
    }
    rules::r1_unused_entries(&reg, &used, &mut out);
    let costs_src = std::fs::read_to_string(root.join(COSTS_PATH)).unwrap_or_default();
    rules::r6_cost_registry(&reg, &parse_costs(&costs_src), &mut out);
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_parses_labels_with_lines() {
        let src = r#"
pub const GEMM_LABELS: &[&str] = &[
    "sbr_panel_update",
    "zy_aw",
];
pub fn is_registered(l: &str) -> bool { GEMM_LABELS.contains(&l) }
"#;
        let reg = parse_registry(src);
        assert_eq!(
            reg.labels,
            vec![
                ("sbr_panel_update".to_string(), 3),
                ("zy_aw".to_string(), 4)
            ]
        );
    }

    #[test]
    fn cost_registry_parses_struct_literal_entries() {
        let src = r#"
pub const GEMM_COSTS: &[GemmCost] = &[
    GemmCost { label: "zy_aw", accumulates: false },
    GemmCost { label: "zy_syr2k", accumulates: true },
];
pub fn cost(label: &str) -> Option<&'static GemmCost> { None }
"#;
        let costs = parse_costs(src);
        assert_eq!(costs.path, COSTS_PATH);
        assert_eq!(
            costs.labels,
            vec![("zy_aw".to_string(), 3), ("zy_syr2k".to_string(), 4)]
        );
        assert!(parse_costs("pub fn nothing() {}").labels.is_empty());
    }

    #[test]
    fn test_paths_are_recognised() {
        assert!(is_test_path("tests/full_pipeline.rs"));
        assert!(is_test_path("crates/bench/benches/gemm.rs"));
        assert!(is_test_path("examples/demo.rs"));
        assert!(!is_test_path("crates/core/src/pipeline.rs"));
    }

    #[test]
    fn diagnostics_render_as_file_line_rule() {
        let d = Diagnostic {
            file: "a/b.rs".to_string(),
            line: 7,
            rule: "R3",
            message: "nope".to_string(),
        };
        assert_eq!(d.to_string(), "a/b.rs:7: R3: nope");
    }
}
