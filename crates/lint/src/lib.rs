#![forbid(unsafe_code)]
//! `tcevd-lint` — repo-specific static analysis for the Tensor-Core EVD
//! workspace.
//!
//! The engine is deliberately dependency-free: a hand-rolled token-level
//! lexer ([`lexer`]) feeds a small set of rules ([`rules`]) that encode
//! invariants no off-the-shelf linter knows about:
//!
//! - **R1** every `GemmContext::gemm` / `syr2k_update` call site passes a
//!   static string label drawn from the registry in
//!   `crates/tensorcore/src/labels.rs`; the dry-run trace model uses the
//!   same label set; no registry entry is dead.
//! - **R2** lossy precision conversions (`round_through_f16`,
//!   `truncate_f16`, `round_to_tf32`, `F16::from_f32`) appear only inside
//!   the precision boundary (`crates/matrix/src/f16.rs` and
//!   `crates/tensorcore`).
//! - **R3** hot-path files contain no `unwrap`/`expect`/`panic!`-family
//!   macros and no `[...]` indexing outside test code.
//! - **R4** public functions in pipeline modules return `Result`.
//! - **R5** every crate root carries `#![forbid(unsafe_code)]` and the
//!   `unsafe` keyword never appears.
//! - **R6** every `GEMM_LABELS` entry has a flop-cost entry in the
//!   `GEMM_COSTS` registry (`crates/prof/src/costs.rs`), and no cost entry
//!   is dead (names a label the table no longer carries).
//! - **R7** the R3 hygiene bar extended to the service layer
//!   (`crates/serve/`): the scheduler holds other jobs' work, so its
//!   non-test code must never `unwrap`, `panic!`, or `[...]`-index.
//!
//! On top of the token-level rules, an item-level parser ([`parser`]) and
//! a workspace call graph ([`callgraph`]) power four transitive rule
//! families:
//!
//! - **R8** transitive hot-path panic-freedom: a panic-family call
//!   anywhere the R3/R7 roots can reach through the call graph is
//!   flagged at the panic site, with the call chain in the message.
//! - **R9** cancellation-seam coverage: every loop that transitively
//!   performs GEMM-scale work (in SBR, bulge chasing, the pipeline
//!   driver, or the service layer) must reach a `CancelToken` check
//!   within one iteration.
//! - **R10** determinism discipline: no thread-coordination primitives
//!   inside `for_each_chunk`/`join` parallel regions, no
//!   `HashMap`/`HashSet` iteration in non-test code, and counters fed by
//!   wall-clock/thread-identity data only in the determinism-exempt
//!   `time.`/`par.` namespaces.
//! - **R11** serve lock discipline: canonical Mutex acquisition order
//!   (`state → cache → workers`), condvar waits only inside predicate
//!   loops, and only the poison-recovering `lock()` helper.
//!
//! One rule checks a non-Rust artifact:
//!
//! - **R12** the committed GEMM tuning table
//!   (`crates/matrix/tuning/default.tune`) parses and satisfies the
//!   dispatch invariants of `tcevd_matrix::tile` — known scalar/class/
//!   tier names, instantiated `(mr, nr)` kernel shapes, `mc % mr == 0`,
//!   `NC % nr == 0`, no duplicate `(scalar, class)` entries — because the
//!   runtime loader drops bad lines silently by design.
//!
//! Findings can be waived line-locally with a
//! `// tcevd-lint: allow(R3)` comment; the waiver covers the comment's
//! line and the two lines after it. Waivers are applied centrally, after
//! all rules ran, so a waiver that suppresses nothing is itself reported
//! (**W1** — dead waiver).
//!
//! Run it with `cargo run -p tcevd-lint`; it exits non-zero when any
//! diagnostic fires and prints `file:line: RULE: message` lines
//! (`--json` emits the same findings machine-readably).

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

use callgraph::{FileUnit, Graph};

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use lexer::Kind;

/// One lint finding, addressed by workspace-relative path (forward
/// slashes) and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The GEMM label registry parsed out of `crates/tensorcore/src/labels.rs`:
/// every string literal inside the `GEMM_LABELS` array, with its line.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Workspace-relative path of the registry source file.
    pub path: String,
    /// `(label, line)` pairs in declaration order.
    pub labels: Vec<(String, usize)>,
}

/// Path of the registry source, relative to the workspace root.
pub const REGISTRY_PATH: &str = "crates/tensorcore/src/labels.rs";

/// Parse the `GEMM_LABELS` array from registry source text.
///
/// Token-level: finds the `GEMM_LABELS` identifier, skips to the first `[`
/// after it, and collects every string literal until the matching `]`.
pub fn parse_registry(src: &str) -> Registry {
    let lx = lexer::lex(src, false);
    let toks = &lx.tokens;
    let mut reg = Registry {
        path: REGISTRY_PATH.to_string(),
        labels: Vec::new(),
    };
    let Some(start) = toks.iter().position(|t| t.is_ident("GEMM_LABELS")) else {
        return reg;
    };
    // Skip past the `=` so the `[` in the `&[&str]` type annotation is not
    // mistaken for the array opener.
    let Some(eq) = toks[start..].iter().position(|t| t.is_punct('=')) else {
        return reg;
    };
    let Some(open) = toks[start + eq..].iter().position(|t| t.is_punct('[')) else {
        return reg;
    };
    let mut depth = 0usize;
    for t in &toks[start + eq + open..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == Kind::Str && depth == 1 {
            reg.labels.push((t.text.clone(), t.line));
        }
    }
    reg
}

/// Path of the flop-cost registry source, relative to the workspace root.
pub const COSTS_PATH: &str = "crates/prof/src/costs.rs";

/// Path of the committed GEMM tuning table, relative to the workspace
/// root. `crates/matrix/src/tile.rs` embeds this file with `include_str!`
/// and parses it panic-free (silently dropping bad lines), so rule R12 is
/// where a typo in the committed table becomes visible.
pub const TUNE_PATH: &str = "crates/matrix/tuning/default.tune";

/// Parse the `GEMM_COSTS` array from cost-registry source text.
///
/// Token-level, like [`parse_registry`], but the entries are `GemmCost`
/// struct literals, so every string literal anywhere inside the array
/// initializer counts (labels are the only strings a cost entry carries).
pub fn parse_costs(src: &str) -> Registry {
    let lx = lexer::lex(src, false);
    let toks = &lx.tokens;
    let mut reg = Registry {
        path: COSTS_PATH.to_string(),
        labels: Vec::new(),
    };
    let Some(start) = toks.iter().position(|t| t.is_ident("GEMM_COSTS")) else {
        return reg;
    };
    let Some(eq) = toks[start..].iter().position(|t| t.is_punct('=')) else {
        return reg;
    };
    let Some(open) = toks[start + eq..].iter().position(|t| t.is_punct('[')) else {
        return reg;
    };
    let mut depth = 0usize;
    for t in &toks[start + eq + open..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == Kind::Str && depth >= 1 {
            reg.labels.push((t.text.clone(), t.line));
        }
    }
    reg
}

/// True when a workspace-relative path holds code that is test-only in its
/// entirety (integration tests, benches, examples): R1's literal-label and
/// R3's hygiene requirements do not apply there.
pub fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Analyze a set of in-memory files together: all file-local rules, the
/// cross-file call-graph rules (R8–R11), then central waiver filtering
/// with dead-waiver detection (W1). `used` collects the GEMM labels the
/// files consume (for the registry dead-entry check, which — like R6 —
/// stays with [`lint_workspace`]).
pub fn analyze_files(
    files: &[(String, String)],
    reg: &Registry,
    used: &mut BTreeSet<String>,
) -> Vec<Diagnostic> {
    let units: Vec<FileUnit> = files
        .iter()
        .map(|(path, src)| FileUnit::new(path, src))
        .collect();
    let mut raw = Vec::new();
    for u in &units {
        let (path, lx) = (u.path.as_str(), &u.lx);
        rules::r1_call_sites(path, lx, reg, used, &mut raw);
        rules::r1_trace_model(path, lx, reg, &mut raw);
        rules::r2_precision_boundary(path, lx, &mut raw);
        rules::r3_hot_path(path, lx, &mut raw);
        rules::r7_serve_hygiene(path, lx, &mut raw);
        rules::r4_result_surface(path, lx, &mut raw);
        if path.ends_with("src/lib.rs") {
            rules::r5_forbid_unsafe_attr(path, lx, &mut raw);
        }
        rules::r5_no_unsafe(path, lx, &mut raw);
        rules::r10_parallel_sync(path, u, &mut raw);
        rules::r10_hash_iteration(path, u, &mut raw);
        rules::r10_counter_namespace(path, u, &mut raw);
        rules::r11_serve_locks(path, u, &mut raw);
    }
    let graph = Graph::build(&units);
    rules::r8_transitive_panics(&units, &graph, &mut raw);
    rules::r9_cancel_seams(&units, &graph, &mut raw);

    // Central waiver pass: suppress waived findings, then report every
    // waiver that suppressed nothing (W1 — dead waiver).
    let index: std::collections::BTreeMap<&str, usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.path.as_str(), i))
        .collect();
    let mut waiver_used: Vec<Vec<bool>> = units
        .iter()
        .map(|u| vec![false; u.lx.waivers.len()])
        .collect();
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        if let Some(&ui) = index.get(d.file.as_str()) {
            for (wi, w) in units[ui].lx.waivers.iter().enumerate() {
                if w.rule == d.rule && w.line <= d.line && d.line <= w.line + 2 {
                    waiver_used[ui][wi] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (ui, u) in units.iter().enumerate() {
        for (wi, w) in u.lx.waivers.iter().enumerate() {
            if !waiver_used[ui][wi] {
                out.push(Diagnostic {
                    file: u.path.clone(),
                    line: w.line,
                    rule: "W1",
                    message: format!(
                        "dead waiver: `allow({})` suppresses nothing on lines \
                         {}-{} — remove it or fix the rule id",
                        w.rule,
                        w.line,
                        w.line + 2
                    ),
                });
            }
        }
    }
    out
}

/// Lint one source file given its workspace-relative path. `used` collects
/// the GEMM labels this file consumes (for the registry dead-entry check).
///
/// Thin wrapper over [`analyze_files`] with a single file: call-graph
/// rules see only this file's definitions.
pub fn lint_source(
    path: &str,
    src: &str,
    reg: &Registry,
    used: &mut BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    out.extend(analyze_files(
        &[(path.to_string(), src.to_string())],
        reg,
        used,
    ));
}

/// Every `.rs` file the lint covers, workspace-relative with forward
/// slashes, sorted. Skips `target/`, hidden directories, and the lint
/// crate itself (it must mention banned tokens to detect them).
pub fn workspace_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if p == root.join("crates").join("lint") {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                if let Some(rel) = relative(root, &p) {
                    files.push(rel);
                }
            }
        }
    }
    files.sort();
    files
}

fn relative(root: &Path, p: &Path) -> Option<String> {
    let rel = p.strip_prefix(root).ok()?;
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Lint the whole workspace rooted at `root`. Returns all diagnostics,
/// sorted by (file, line, rule).
///
/// `filters`, when non-empty, restricts per-file findings to paths with
/// one of the given prefixes (workspace-relative, forward slashes). The
/// whole workspace is still loaded — the call graph must be global for
/// R8/R9 — but only filtered files' findings are reported, and the
/// registry-global checks (R1c dead labels, R6 cost coverage) are
/// skipped, since a partial view cannot prove a label unused.
pub fn lint_workspace_filtered(root: &Path, filters: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let reg_src = std::fs::read_to_string(root.join(REGISTRY_PATH)).unwrap_or_default();
    let reg = parse_registry(&reg_src);
    if reg.labels.is_empty() {
        out.push(Diagnostic {
            file: REGISTRY_PATH.to_string(),
            line: 1,
            rule: "R1",
            message: "GEMM label registry is missing or empty".to_string(),
        });
        return out;
    }
    let mut used = BTreeSet::new();
    let files: Vec<(String, String)> = workspace_files(root)
        .into_iter()
        .filter_map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel)).ok()?;
            Some((rel, src))
        })
        .collect();
    let mut diags = analyze_files(&files, &reg, &mut used);
    if filters.is_empty() {
        rules::r1_unused_entries(&reg, &used, &mut diags);
        let costs_src = std::fs::read_to_string(root.join(COSTS_PATH)).unwrap_or_default();
        rules::r6_cost_registry(&reg, &parse_costs(&costs_src), &mut diags);
        let tune_src = std::fs::read_to_string(root.join(TUNE_PATH)).unwrap_or_default();
        rules::r12_tuning_table(TUNE_PATH, &tune_src, &mut diags);
    } else {
        diags.retain(|d| filters.iter().any(|f| d.file.starts_with(f.as_str())));
    }
    out.extend(diags);
    out.sort();
    out
}

/// [`lint_workspace_filtered`] with no path filters: the full rule set,
/// including the registry-global checks.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    lint_workspace_filtered(root, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_parses_labels_with_lines() {
        let src = r#"
pub const GEMM_LABELS: &[&str] = &[
    "sbr_panel_update",
    "zy_aw",
];
pub fn is_registered(l: &str) -> bool { GEMM_LABELS.contains(&l) }
"#;
        let reg = parse_registry(src);
        assert_eq!(
            reg.labels,
            vec![
                ("sbr_panel_update".to_string(), 3),
                ("zy_aw".to_string(), 4)
            ]
        );
    }

    #[test]
    fn cost_registry_parses_struct_literal_entries() {
        let src = r#"
pub const GEMM_COSTS: &[GemmCost] = &[
    GemmCost { label: "zy_aw", accumulates: false },
    GemmCost { label: "zy_syr2k", accumulates: true },
];
pub fn cost(label: &str) -> Option<&'static GemmCost> { None }
"#;
        let costs = parse_costs(src);
        assert_eq!(costs.path, COSTS_PATH);
        assert_eq!(
            costs.labels,
            vec![("zy_aw".to_string(), 3), ("zy_syr2k".to_string(), 4)]
        );
        assert!(parse_costs("pub fn nothing() {}").labels.is_empty());
    }

    #[test]
    fn test_paths_are_recognised() {
        assert!(is_test_path("tests/full_pipeline.rs"));
        assert!(is_test_path("crates/bench/benches/gemm.rs"));
        assert!(is_test_path("examples/demo.rs"));
        assert!(!is_test_path("crates/core/src/pipeline.rs"));
    }

    #[test]
    fn diagnostics_render_as_file_line_rule() {
        let d = Diagnostic {
            file: "a/b.rs".to_string(),
            line: 7,
            rule: "R3",
            message: "nope".to_string(),
        };
        assert_eq!(d.to_string(), "a/b.rs:7: R3: nope");
    }
}
