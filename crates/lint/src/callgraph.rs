//! Workspace call graph over the [`crate::parser`] output.
//!
//! Nodes are function definitions; edges are resolved call expressions.
//! Resolution is heuristic (name + receiver candidates, see
//! [`Graph::resolve_call`]) and intentionally conservative for R8: an
//! unknown receiver fans out to *every* workspace method of that name, so
//! a panicking helper is never missed because type inference was too weak.
//! The price — occasional spurious edges — is bounded by how unique method
//! names are in this workspace, and the false-negative classes that remain
//! are documented in DESIGN.md §6.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Kind, Lexed, Token};
use crate::parser::{self, CallSite, FnDef, ParsedFile, Receiver};

/// One lexed + parsed source file, addressed by workspace-relative path.
pub struct FileUnit {
    pub path: String,
    pub lx: Lexed,
    pub parsed: ParsedFile,
}

impl FileUnit {
    pub fn new(path: &str, src: &str) -> FileUnit {
        let lx = crate::lexer::lex(src, crate::is_test_path(path));
        let parsed = parser::parse(&lx);
        FileUnit {
            path: path.to_string(),
            lx,
            parsed,
        }
    }
}

/// Variable-name hints for receivers whose type the parser cannot see
/// (fields, loop bindings): the workspace's naming conventions are strong
/// enough to pin these.
fn name_hint(var: &str) -> Option<&'static str> {
    if var == "ctx" {
        return Some("GemmContext");
    }
    if var == "sink" || var.ends_with("_sink") {
        return Some("TraceSink");
    }
    None
}

/// A call-graph edge: callee node plus the call line in the caller's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub callee: usize,
    pub line: usize,
}

/// The workspace call graph. Node ids index [`Graph::nodes`].
pub struct Graph {
    /// `(file index, fn index within that file's ParsedFile)`.
    pub nodes: Vec<(usize, usize)>,
    /// Forward edges per node, sorted and deduplicated.
    pub edges: Vec<Vec<Edge>>,
    /// Reverse adjacency (callers per node).
    pub callers: Vec<Vec<usize>>,
    /// Methods (fns with an impl owner) by name.
    methods: BTreeMap<String, Vec<usize>>,
    /// Free functions (no impl owner) by name.
    free: BTreeMap<String, Vec<usize>>,
    /// All impl owner type names in the workspace.
    owners: BTreeSet<String>,
}

impl Graph {
    pub fn build(units: &[FileUnit]) -> Graph {
        let mut nodes = Vec::new();
        for (fi, u) in units.iter().enumerate() {
            for gi in 0..u.parsed.fns.len() {
                nodes.push((fi, gi));
            }
        }
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut owners = BTreeSet::new();
        for (id, &(fi, gi)) in nodes.iter().enumerate() {
            let f = &units[fi].parsed.fns[gi];
            if let Some(o) = &f.owner {
                owners.insert(o.clone());
                methods.entry(f.name.clone()).or_default().push(id);
            } else {
                free.entry(f.name.clone()).or_default().push(id);
            }
        }
        let mut g = Graph {
            edges: vec![Vec::new(); nodes.len()],
            callers: vec![Vec::new(); nodes.len()],
            nodes,
            methods,
            free,
            owners,
        };
        for id in 0..g.nodes.len() {
            let (fi, gi) = g.nodes[id];
            let f = &units[fi].parsed.fns[gi];
            let Some((open, close)) = f.body else {
                continue;
            };
            let mut edges = Vec::new();
            for call in parser::scan_calls(&units[fi].lx.tokens, open + 1, close) {
                for callee in g.resolve_call(units, Some(id), &call) {
                    if callee != id {
                        edges.push(Edge {
                            callee,
                            line: call.line,
                        });
                    }
                }
            }
            edges.sort();
            edges.dedup_by_key(|e| e.callee);
            g.edges[id] = edges;
        }
        for id in 0..g.nodes.len() {
            for e in &g.edges[id] {
                g.callers[e.callee].push(id);
            }
        }
        g
    }

    /// The `FnDef` behind a node id.
    pub fn def<'a>(&self, units: &'a [FileUnit], id: usize) -> &'a FnDef {
        let (fi, gi) = self.nodes[id];
        &units[fi].parsed.fns[gi]
    }

    /// The file a node lives in.
    pub fn file<'a>(&self, units: &'a [FileUnit], id: usize) -> &'a FileUnit {
        &units[self.nodes[id].0]
    }

    /// The innermost function whose body contains token `tok` of file `fi`.
    pub fn node_at(&self, units: &[FileUnit], fi: usize, tok: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span len, id)
        for (id, &(nfi, gi)) in self.nodes.iter().enumerate() {
            if nfi != fi {
                continue;
            }
            if let Some((open, close)) = units[nfi].parsed.fns[gi].body {
                if open < tok && tok < close {
                    let len = close - open;
                    if best.is_none_or(|(bl, _)| len < bl) {
                        best = Some((len, id));
                    }
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Resolve one call expression to candidate callee nodes.
    ///
    /// Heuristics, in order:
    /// * free calls → owner-less functions of that name;
    /// * `Type::m(…)` → methods of exactly that owner (empty when the type
    ///   is not implemented in the workspace);
    /// * `self.m(…)` → methods of the enclosing impl's owner;
    /// * `name.m(…)` with a declared/inferred type or a [`name_hint`] → the
    ///   candidate types' methods; a candidate set that matches nothing in
    ///   the workspace resolves to nothing (external types stay external);
    /// * `name.m(…)` with no candidates, and opaque receivers (`expr).m`)
    ///   → **all** workspace methods named `m` (conservative for R8).
    pub fn resolve_call(
        &self,
        units: &[FileUnit],
        caller: Option<usize>,
        call: &CallSite,
    ) -> Vec<usize> {
        let all_methods = |name: &str| self.methods.get(name).cloned().unwrap_or_default();
        let methods_of = |name: &str, owners: &[String]| -> Vec<usize> {
            all_methods(name)
                .into_iter()
                .filter(|&id| {
                    self.def(units, id)
                        .owner
                        .as_ref()
                        .is_some_and(|o| owners.iter().any(|c| c == o))
                })
                .collect()
        };
        match &call.recv {
            Receiver::Free => self.free.get(&call.name).cloned().unwrap_or_default(),
            Receiver::Type(t) => {
                if self.owners.contains(t) {
                    methods_of(&call.name, std::slice::from_ref(t))
                } else if t.len() <= 2 {
                    // A one/two-letter type that implements nothing in the
                    // workspace is almost surely a generic parameter
                    // (`T::gemm_microkernel(…)`) — fan out like an unknown
                    // receiver so trait-dispatched kernels stay reachable.
                    all_methods(&call.name)
                } else {
                    Vec::new()
                }
            }
            Receiver::SelfRecv => {
                let Some(owner) = caller.and_then(|c| self.def(units, c).owner.clone()) else {
                    return Vec::new();
                };
                methods_of(&call.name, &[owner])
            }
            Receiver::Named(v) => {
                let cands: Vec<String> = caller
                    .and_then(|c| self.def(units, c).locals.get(v).cloned())
                    .or_else(|| name_hint(v).map(|h| vec![h.to_string()]))
                    .unwrap_or_default();
                if cands.is_empty() {
                    all_methods(&call.name)
                } else {
                    methods_of(&call.name, &cands)
                }
            }
            Receiver::Opaque => all_methods(&call.name),
        }
    }

    /// Forward BFS from `roots`; returns `(visited, parent)` where
    /// `parent[n]` is `(caller node, call line)` on the discovery path
    /// (`None` for roots and unvisited nodes).
    pub fn bfs(&self, roots: &[usize]) -> (Vec<bool>, Vec<Option<(usize, usize)>>) {
        let mut visited = vec![false; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if !visited[r] {
                visited[r] = true;
                q.push_back(r);
            }
        }
        while let Some(n) = q.pop_front() {
            for e in &self.edges[n] {
                if !visited[e.callee] {
                    visited[e.callee] = true;
                    parent[e.callee] = Some((n, e.line));
                    q.push_back(e.callee);
                }
            }
        }
        (visited, parent)
    }

    /// Backward-closed reachability: all nodes from which a seed node is
    /// reachable (seeds included). Used for "transitively performs
    /// GEMM-scale work" / "transitively checks cancellation" taint sets.
    pub fn reaching(&self, seeds: &[usize]) -> Vec<bool> {
        let mut reach = vec![false; self.nodes.len()];
        let mut q: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if !reach[s] {
                reach[s] = true;
                q.push_back(s);
            }
        }
        while let Some(n) = q.pop_front() {
            for &c in &self.callers[n] {
                if !reach[c] {
                    reach[c] = true;
                    q.push_back(c);
                }
            }
        }
        reach
    }

    /// Format the BFS discovery path `root → … → node` as fn names.
    pub fn path_to(
        &self,
        units: &[FileUnit],
        parent: &[Option<(usize, usize)>],
        mut node: usize,
    ) -> String {
        let mut names = vec![self.def(units, node).name.clone()];
        while let Some((p, _)) = parent[node] {
            names.push(self.def(units, p).name.clone());
            node = p;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Token-span scans shared by the call-graph rules. All skip test-region
/// tokens.
///
/// Panic sites: `.unwrap(` / `.expect(` / `panic!` / `todo!` /
/// `unimplemented!` — the same family R3/R7 ban file-locally.
/// (`unreachable!`, `assert!`, and `[...]` indexing are *not* treated as
/// transitive panic sources; see DESIGN.md §6 for the rationale.)
pub fn panic_sites(toks: &[Token], open: usize, close: usize) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let close = close.min(toks.len());
    for i in open..close {
        let t = &toks[i];
        if t.kind != Kind::Ident || t.in_test {
            continue;
        }
        if (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push((t.line, format!(".{}()", t.text)));
        }
        if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push((t.line, format!("{}!", t.text)));
        }
    }
    out
}

/// Whether a token span directly dispatches GEMM-scale work
/// (`.gemm(` / `.syr2k_update(`).
pub fn has_gemm_dispatch(toks: &[Token], open: usize, close: usize) -> bool {
    let close = close.min(toks.len());
    (open..close).any(|i| {
        toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("gemm") || t.is_ident("syr2k_update"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
    })
}

/// Identifiers that constitute a cancellation check.
pub const CANCEL_IDENTS: &[&str] = &[
    "is_cancelled",
    "cancel_requested",
    "check_cancelled",
    "take_cancel_failure",
];

/// Whether a token span checks cancellation (directly).
pub fn has_cancel_check(toks: &[Token], open: usize, close: usize) -> bool {
    let close = close.min(toks.len());
    toks[open..close]
        .iter()
        .any(|t| t.kind == Kind::Ident && CANCEL_IDENTS.contains(&t.text.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files.iter().map(|(p, s)| FileUnit::new(p, s)).collect()
    }

    fn node(units: &[FileUnit], g: &Graph, name: &str) -> usize {
        (0..g.nodes.len())
            .find(|&id| g.def(units, id).name == name)
            .unwrap()
    }

    #[test]
    fn edges_resolve_free_method_and_typed_calls() {
        let us = units(&[
            (
                "crates/a/src/lib.rs",
                r#"
pub struct Mat;
impl Mat {
    pub fn helper(&self) { boom(); }
}
pub fn boom() { panic!("x"); }
pub fn entry(m: &Mat) { m.helper(); }
"#,
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn other(v: &Vec<u8>) { v.helper(); }",
            ),
        ]);
        let g = Graph::build(&us);
        let entry = node(&us, &g, "entry");
        let helper = node(&us, &g, "helper");
        let boom = node(&us, &g, "boom");
        assert!(g.edges[entry].iter().any(|e| e.callee == helper));
        assert!(g.edges[helper].iter().any(|e| e.callee == boom));
        // `v: Vec<u8>` — a known non-workspace candidate set resolves to
        // nothing, so `other` gains no edge to Mat::helper.
        let other = node(&us, &g, "other");
        assert!(g.edges[other].is_empty());
    }

    #[test]
    fn unknown_receiver_fans_out_and_bfs_traces_paths() {
        let us = units(&[(
            "crates/a/src/lib.rs",
            r#"
pub struct S;
impl S {
    pub fn risky(&self) { self.deeper(); }
    pub fn deeper(&self) { x.unwrap(); }
}
pub fn root() { mystery.risky(); }
"#,
        )]);
        let g = Graph::build(&us);
        let root = node(&us, &g, "root");
        let deeper = node(&us, &g, "deeper");
        let (visited, parent) = g.bfs(&[root]);
        assert!(visited[deeper], "unknown receiver must fan out");
        assert_eq!(g.path_to(&us, &parent, deeper), "root → risky → deeper");
        let (fi, gi) = g.nodes[deeper];
        let (open, close) = us[fi].parsed.fns[gi].body.unwrap();
        let sites = panic_sites(&us[fi].lx.tokens, open, close);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1, ".unwrap()");
    }

    #[test]
    fn reaching_sets_propagate_to_callers() {
        let us = units(&[(
            "crates/a/src/lib.rs",
            r#"
pub struct Ctx;
impl Ctx {
    pub fn gemm(&self, label: &str) {}
}
pub fn inner(ctx: &Ctx) { ctx.gemm("l"); }
pub fn outer(ctx: &Ctx) { inner(ctx); }
pub fn unrelated() {}
"#,
        )]);
        let g = Graph::build(&us);
        let seeds: Vec<usize> = (0..g.nodes.len())
            .filter(|&id| {
                let d = g.def(&us, id);
                d.body
                    .is_some_and(|(o, c)| has_gemm_dispatch(&g.file(&us, id).lx.tokens, o, c))
            })
            .collect();
        let reach = g.reaching(&seeds);
        assert!(reach[node(&us, &g, "inner")]);
        assert!(reach[node(&us, &g, "outer")]);
        assert!(!reach[node(&us, &g, "unrelated")]);
    }
}
