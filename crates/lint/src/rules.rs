//! The rule set. Every rule takes the lexed token stream plus the
//! workspace-relative path (forward slashes) and appends [`Diagnostic`]s.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 | GEMM call sites pass a registered static label; registry entries are all used; trace-model labels are registered |
//! | R2 | lossy precision conversions stay inside the precision boundary |
//! | R3 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` and no `[` indexing in hot paths |
//! | R4 | public pipeline functions return `Result` |
//! | R5 | every crate forbids `unsafe_code` (and none uses `unsafe`) |
//! | R6 | every GEMM label has a flop-cost registry entry; no cost entry is dead |
//! | R7 | the R3 hygiene bar extended to the service layer (`crates/serve/`) |

use crate::lexer::{Kind, Lexed, Token};
use crate::{Diagnostic, Registry};

/// Hot-path files under rule R3 (no-panic, no-indexing hygiene).
pub const R3_FILES: &[&str] = &[
    "crates/band/src/common.rs",
    "crates/band/src/formw.rs",
    "crates/band/src/panel.rs",
    "crates/band/src/sbr_wy.rs",
    "crates/band/src/sbr_zy.rs",
    "crates/core/src/pipeline.rs",
    "crates/tensorcore/src/engine.rs",
];

/// Service-layer files under rule R7: the scheduler holds other people's
/// jobs, so it gets the same no-panic, no-indexing bar as the hot paths —
/// an `unwrap` here wedges every queued job, not just one result.
pub const R7_FILES: &[&str] = &["crates/serve/"];

/// Pipeline modules whose public functions must return `Result` (R4).
pub const R4_FILES: &[&str] = &[
    "crates/band/src/formw.rs",
    "crates/band/src/sbr_wy.rs",
    "crates/band/src/sbr_zy.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/svd.rs",
    "crates/factor/src/reconstruct.rs",
];

/// Files allowed to perform lossy precision conversion (R2): the fp16/tf32
/// scalar emulation itself and the Tensor-Core simulator built on it.
pub const R2_ALLOWED: &[&str] = &["crates/matrix/src/f16.rs", "crates/tensorcore/"];

/// Lossy conversion entry points R2 contains.
const R2_BANNED_IDENTS: &[&str] = &["round_through_f16", "truncate_f16", "round_to_tf32"];

/// The GEMM-forwarding layer itself: passes its `label` parameter through,
/// so R1's literal-label requirement does not apply to it.
const R1_EXEMPT: &[&str] = &["crates/tensorcore/src/engine.rs"];

fn diag(out: &mut Vec<Diagnostic>, path: &str, line: usize, rule: &'static str, msg: String) {
    out.push(Diagnostic {
        file: path.to_string(),
        line,
        rule,
        message: msg,
    });
}

fn in_list(path: &str, list: &[&str]) -> bool {
    list.iter().any(|p| {
        if p.ends_with('/') {
            path.starts_with(p)
        } else {
            path == *p
        }
    })
}

/// R1a: every `.gemm(` / `.syr2k_update(` call site in non-test code passes
/// a string-literal first argument drawn from the registry. Returns the
/// labels used (for the registry's unused-entry check).
pub fn r1_call_sites(
    path: &str,
    lx: &Lexed,
    reg: &Registry,
    used: &mut std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("gemm") || t.is_ident("syr2k_update"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        let call = &toks[i + 1];
        let Some(arg) = toks.get(i + 3) else { continue };
        if call.in_test {
            continue; // test call sites may use ad-hoc labels
        }
        if in_list(path, R1_EXEMPT) {
            continue;
        }
        let line = arg.line;
        if lx.waived("R1", line) {
            continue;
        }
        if arg.kind != Kind::Str {
            diag(
                out,
                path,
                line,
                "R1",
                format!(
                    "{} call must pass a static string label as its first \
                     argument (got `{}`)",
                    call.text, arg.text
                ),
            );
            continue;
        }
        used.insert(arg.text.clone());
        if !reg.labels.iter().any(|(l, _)| l == &arg.text) {
            diag(
                out,
                path,
                line,
                "R1",
                format!(
                    "GEMM label {:?} is not in the registry \
                     (crates/tensorcore/src/labels.rs)",
                    arg.text
                ),
            );
        }
    }
}

/// R1b: string labels fed to the dry-run trace model's `rec(`/`rec_on(`
/// generators must also come from the registry, so model traces stay
/// join-able with real traces.
pub fn r1_trace_model(path: &str, lx: &Lexed, reg: &Registry, out: &mut Vec<Diagnostic>) {
    if !path.ends_with("trace_model.rs") {
        return;
    }
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if !((toks[i].is_ident("rec") || toks[i].is_ident("rec_on"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        if toks[i].in_test {
            continue;
        }
        // scan the argument list (depth-1) for string literals
        let mut depth = 0usize;
        let mut k = i + 1;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == Kind::Str
                && depth == 1
                && !reg.labels.iter().any(|(l, _)| l == &t.text)
                && !lx.waived("R1", t.line)
            {
                diag(
                    out,
                    path,
                    t.line,
                    "R1",
                    format!("trace-model label {:?} is not in the registry", t.text),
                );
            }
            k += 1;
        }
    }
}

/// R1c: registry entries no live call site or trace-model generator uses.
/// Run once after all files are scanned, with the union of used labels.
pub fn r1_unused_entries(
    reg: &Registry,
    used: &std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (label, line) in &reg.labels {
        if !used.contains(label) {
            diag(
                out,
                &reg.path,
                *line,
                "R1",
                format!("registry entry {label:?} is used by no GEMM call site"),
            );
        }
    }
}

/// R6: the flop-cost registry (`GEMM_COSTS` in `crates/prof/src/costs.rs`)
/// must cover every `GEMM_LABELS` entry, and carry no dead entries. Run
/// once per workspace with both parsed registries.
pub fn r6_cost_registry(reg: &Registry, costs: &Registry, out: &mut Vec<Diagnostic>) {
    if costs.labels.is_empty() {
        diag(
            out,
            &costs.path,
            1,
            "R6",
            "GEMM flop-cost registry (GEMM_COSTS) is missing or empty".to_string(),
        );
        return;
    }
    for (label, line) in &reg.labels {
        if !costs.labels.iter().any(|(l, _)| l == label) {
            diag(
                out,
                &reg.path,
                *line,
                "R6",
                format!(
                    "GEMM label {label:?} has no flop-cost entry in {}",
                    costs.path
                ),
            );
        }
    }
    for (label, line) in &costs.labels {
        if !reg.labels.iter().any(|(l, _)| l == label) {
            diag(
                out,
                &costs.path,
                *line,
                "R6",
                format!("dead cost entry {label:?}: no such entry in GEMM_LABELS"),
            );
        }
    }
}

/// R2: lossy precision conversions (`round_through_f16`, `truncate_f16`,
/// `round_to_tf32`, `F16::from_f32`) only inside the precision boundary.
pub fn r2_precision_boundary(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if in_list(path, R2_ALLOWED) {
        return;
    }
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || t.in_test {
            continue;
        }
        let banned = R2_BANNED_IDENTS.contains(&t.text.as_str())
            || (t.text == "from_f32"
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("F16"));
        if banned && !lx.waived("R2", t.line) {
            diag(
                out,
                path,
                t.line,
                "R2",
                format!(
                    "lossy precision conversion `{}` outside the precision \
                     boundary (crates/matrix/src/f16.rs, crates/tensorcore)",
                    t.text
                ),
            );
        }
    }
}

/// Identifiers that may legitimately precede `[` without it being indexing
/// (statement/expression keywords).
const NON_VALUE_KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "use", "where", "while",
];

/// R3: hot-path hygiene — no `unwrap`/`expect`/`panic!`/`todo!`/
/// `unimplemented!`, and no `[`-indexing (postfix after a value), in the
/// non-test code of [`R3_FILES`].
pub fn r3_hot_path(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R3_FILES) {
        return;
    }
    hygiene_walk(path, lx, "R3", "a hot path", out);
}

/// R7: the same hygiene bar over the service layer ([`R7_FILES`]) — the
/// scheduler's own code must never abort or index out of bounds while it
/// holds other jobs' work.
pub fn r7_serve_hygiene(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R7_FILES) {
        return;
    }
    hygiene_walk(path, lx, "R7", "the service layer", out);
}

/// The shared R3/R7 hygiene walker: no `.unwrap()`/`.expect()`, no
/// `panic!`-family macros, no postfix `[` indexing — in non-test,
/// non-waived code. `context` names the protected region in diagnostics.
fn hygiene_walk(
    path: &str,
    lx: &Lexed,
    rule: &'static str,
    context: &str,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || lx.waived(rule, t.line) {
            continue;
        }
        // .unwrap( / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            // poison-recovery (`unwrap_or_else`) and friends are idents like
            // `unwrap_or_else`, lexed as one token — only exact matches fire.
            diag(
                out,
                path,
                t.line,
                rule,
                format!(
                    "`.{}()` in {context} — return a typed error instead",
                    t.text
                ),
            );
        }
        // panic! / todo! / unimplemented!
        if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            diag(
                out,
                path,
                t.line,
                rule,
                format!("`{}!` in {context} — return a typed error instead", t.text),
            );
        }
        // postfix indexing: `[` after a value (ident, `)`, `]`, `?`)
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let is_value = match p.kind {
                Kind::Ident => !NON_VALUE_KEYWORDS.contains(&p.text.as_str()),
                Kind::Punct => p.is_punct(')') || p.is_punct(']') || p.is_punct('?'),
                _ => false,
            };
            if is_value {
                diag(
                    out,
                    path,
                    t.line,
                    rule,
                    format!(
                        "`[...]` indexing in {context} — use `.get`/`.set`, views, \
                         or iterators"
                    ),
                );
            }
        }
    }
}

/// R4: `pub fn`s in pipeline modules return `Result`. `pub(crate)`/
/// `pub(super)` functions are not public API and are exempt.
pub fn r4_result_surface(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R4_FILES) {
        return;
    }
    let toks = &lx.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("pub") || toks[i].in_test {
            i += 1;
            continue;
        }
        // pub(crate)/pub(super): restricted visibility → exempt
        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(fn_tok) = toks.get(i + 1) else { break };
        if !fn_tok.is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 2) else { break };
        let line = fn_tok.line;
        // scan the signature: from `fn` to the body `{` at paren-depth 0
        let mut depth = 0usize;
        let mut has_result = false;
        let mut k = i + 2;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth = depth.saturating_sub(1);
            } else if (t.is_punct('{') || t.is_punct(';')) && depth == 0 {
                break;
            } else if t.is_ident("Result") {
                has_result = true;
            }
            k += 1;
        }
        if !has_result && !lx.waived("R4", line) {
            diag(
                out,
                path,
                line,
                "R4",
                format!(
                    "public pipeline function `{}` does not return `Result` — \
                     surface failures as typed `EvdError`s",
                    name.text
                ),
            );
        }
        i = k + 1;
    }
}

/// R5a: the crate root must carry `#![forbid(unsafe_code)]`.
/// Called only for `crates/*/src/lib.rs` files.
pub fn r5_forbid_unsafe_attr(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let found = toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !found && !lx.waived("R5", 1) {
        diag(
            out,
            path,
            1,
            "R5",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// R5b: no `unsafe` keyword anywhere in non-test code (the attribute makes
/// the compiler enforce this too; the lint reports it with the rest).
pub fn r5_no_unsafe(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if t.is_ident("unsafe") && !t.in_test && !lx.waived("R5", t.line) {
            diag(
                out,
                path,
                t.line,
                "R5",
                "`unsafe` is banned workspace-wide".to_string(),
            );
        }
    }
}

/// Helper for rules/tests: the first-token line of a lexed stream (or 1).
pub fn first_line(tokens: &[Token]) -> usize {
    tokens.first().map_or(1, |t| t.line)
}
