//! The rule set. File-local rules take the lexed token stream plus the
//! workspace-relative path (forward slashes); the call-graph rules
//! (R8–R11) additionally see the whole workspace as [`FileUnit`]s and a
//! [`Graph`]. All rules append raw [`Diagnostic`]s — waiver suppression
//! happens centrally in [`crate::analyze_files`] so dead waivers can be
//! detected (W1).
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 | GEMM call sites pass a registered static label; registry entries are all used; trace-model labels are registered |
//! | R2 | lossy precision conversions stay inside the precision boundary |
//! | R3 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` and no `[` indexing in hot paths |
//! | R4 | public pipeline functions return `Result` |
//! | R5 | every crate forbids `unsafe_code` (and none uses `unsafe`) |
//! | R6 | every GEMM label has a flop-cost registry entry; no cost entry is dead |
//! | R7 | the R3 hygiene bar extended to the service layer (`crates/serve/`) |
//! | R8 | no panic-family call transitively reachable from a hot path (call-graph walk with path trace) |
//! | R9 | every loop transitively doing GEMM-scale work reaches a `CancelToken` check within one iteration |
//! | R10 | determinism discipline: no sync primitives in parallel regions, no HashMap/HashSet iteration, counters from wall-clock/thread identity only in `time.`/`par.` |
//! | R11 | serve lock discipline: canonical Mutex order, condvar waits in predicate loops, poison-recovering `lock()` helper only |
//! | R12 | the committed GEMM tuning table parses and satisfies the `tile` dispatch invariants (known names, instantiated kernels, divisibility, no duplicates) |
//! | W1 | every `tcevd-lint: allow(…)` waiver suppresses at least one finding |

use crate::callgraph::{self, FileUnit, Graph};
use crate::lexer::{Kind, Lexed, Token};
use crate::parser;
use crate::{Diagnostic, Registry};

/// Hot-path files under rule R3 (no-panic, no-indexing hygiene).
pub const R3_FILES: &[&str] = &[
    "crates/band/src/common.rs",
    "crates/band/src/formw.rs",
    "crates/band/src/panel.rs",
    "crates/band/src/sbr_dbr.rs",
    "crates/band/src/sbr_wy.rs",
    "crates/band/src/sbr_zy.rs",
    "crates/core/src/pipeline.rs",
    "crates/tensorcore/src/engine.rs",
];

/// Service-layer files under rule R7: the scheduler holds other people's
/// jobs, so it gets the same no-panic, no-indexing bar as the hot paths —
/// an `unwrap` here wedges every queued job, not just one result.
pub const R7_FILES: &[&str] = &["crates/serve/"];

/// Pipeline modules whose public functions must return `Result` (R4).
pub const R4_FILES: &[&str] = &[
    "crates/band/src/formw.rs",
    "crates/band/src/sbr_dbr.rs",
    "crates/band/src/sbr_wy.rs",
    "crates/band/src/sbr_zy.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/svd.rs",
    "crates/factor/src/reconstruct.rs",
];

/// Files allowed to perform lossy precision conversion (R2): the fp16/tf32
/// scalar emulation itself and the Tensor-Core simulator built on it.
pub const R2_ALLOWED: &[&str] = &["crates/matrix/src/f16.rs", "crates/tensorcore/"];

/// Lossy conversion entry points R2 contains.
const R2_BANNED_IDENTS: &[&str] = &["round_through_f16", "truncate_f16", "round_to_tf32"];

/// The GEMM-forwarding layer itself: passes its `label` parameter through,
/// so R1's literal-label requirement does not apply to it.
const R1_EXEMPT: &[&str] = &["crates/tensorcore/src/engine.rs"];

fn diag(out: &mut Vec<Diagnostic>, path: &str, line: usize, rule: &'static str, msg: String) {
    out.push(Diagnostic {
        file: path.to_string(),
        line,
        rule,
        message: msg,
    });
}

fn in_list(path: &str, list: &[&str]) -> bool {
    list.iter().any(|p| {
        if p.ends_with('/') {
            path.starts_with(p)
        } else {
            path == *p
        }
    })
}

/// R1a: every `.gemm(` / `.syr2k_update(` call site in non-test code passes
/// a string-literal first argument drawn from the registry. Returns the
/// labels used (for the registry's unused-entry check).
pub fn r1_call_sites(
    path: &str,
    lx: &Lexed,
    reg: &Registry,
    used: &mut std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("gemm") || t.is_ident("syr2k_update"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        let call = &toks[i + 1];
        let Some(arg) = toks.get(i + 3) else { continue };
        if call.in_test {
            continue; // test call sites may use ad-hoc labels
        }
        if in_list(path, R1_EXEMPT) {
            continue;
        }
        let line = arg.line;
        if arg.kind != Kind::Str {
            diag(
                out,
                path,
                line,
                "R1",
                format!(
                    "{} call must pass a static string label as its first \
                     argument (got `{}`)",
                    call.text, arg.text
                ),
            );
            continue;
        }
        used.insert(arg.text.clone());
        if !reg.labels.iter().any(|(l, _)| l == &arg.text) {
            diag(
                out,
                path,
                line,
                "R1",
                format!(
                    "GEMM label {:?} is not in the registry \
                     (crates/tensorcore/src/labels.rs)",
                    arg.text
                ),
            );
        }
    }
}

/// R1b: string labels fed to the dry-run trace model's `rec(`/`rec_on(`
/// generators must also come from the registry, so model traces stay
/// join-able with real traces.
pub fn r1_trace_model(path: &str, lx: &Lexed, reg: &Registry, out: &mut Vec<Diagnostic>) {
    if !path.ends_with("trace_model.rs") {
        return;
    }
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        if !((toks[i].is_ident("rec") || toks[i].is_ident("rec_on"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        if toks[i].in_test {
            continue;
        }
        // scan the argument list (depth-1) for string literals
        let mut depth = 0usize;
        let mut k = i + 1;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == Kind::Str
                && depth == 1
                && !reg.labels.iter().any(|(l, _)| l == &t.text)
            {
                diag(
                    out,
                    path,
                    t.line,
                    "R1",
                    format!("trace-model label {:?} is not in the registry", t.text),
                );
            }
            k += 1;
        }
    }
}

/// R1c: registry entries no live call site or trace-model generator uses.
/// Run once after all files are scanned, with the union of used labels.
pub fn r1_unused_entries(
    reg: &Registry,
    used: &std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (label, line) in &reg.labels {
        if !used.contains(label) {
            diag(
                out,
                &reg.path,
                *line,
                "R1",
                format!("registry entry {label:?} is used by no GEMM call site"),
            );
        }
    }
}

/// R6: the flop-cost registry (`GEMM_COSTS` in `crates/prof/src/costs.rs`)
/// must cover every `GEMM_LABELS` entry, and carry no dead entries. Run
/// once per workspace with both parsed registries.
pub fn r6_cost_registry(reg: &Registry, costs: &Registry, out: &mut Vec<Diagnostic>) {
    if costs.labels.is_empty() {
        diag(
            out,
            &costs.path,
            1,
            "R6",
            "GEMM flop-cost registry (GEMM_COSTS) is missing or empty".to_string(),
        );
        return;
    }
    for (label, line) in &reg.labels {
        if !costs.labels.iter().any(|(l, _)| l == label) {
            diag(
                out,
                &reg.path,
                *line,
                "R6",
                format!(
                    "GEMM label {label:?} has no flop-cost entry in {}",
                    costs.path
                ),
            );
        }
    }
    for (label, line) in &costs.labels {
        if !reg.labels.iter().any(|(l, _)| l == label) {
            diag(
                out,
                &costs.path,
                *line,
                "R6",
                format!("dead cost entry {label:?}: no such entry in GEMM_LABELS"),
            );
        }
    }
}

/// R2: lossy precision conversions (`round_through_f16`, `truncate_f16`,
/// `round_to_tf32`, `F16::from_f32`) only inside the precision boundary.
pub fn r2_precision_boundary(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if in_list(path, R2_ALLOWED) {
        return;
    }
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || t.in_test {
            continue;
        }
        let banned = R2_BANNED_IDENTS.contains(&t.text.as_str())
            || (t.text == "from_f32"
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("F16"));
        if banned {
            diag(
                out,
                path,
                t.line,
                "R2",
                format!(
                    "lossy precision conversion `{}` outside the precision \
                     boundary (crates/matrix/src/f16.rs, crates/tensorcore)",
                    t.text
                ),
            );
        }
    }
}

/// Identifiers that may legitimately precede `[` without it being indexing
/// (statement/expression keywords).
const NON_VALUE_KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "use", "where", "while",
];

/// R3: hot-path hygiene — no `unwrap`/`expect`/`panic!`/`todo!`/
/// `unimplemented!`, and no `[`-indexing (postfix after a value), in the
/// non-test code of [`R3_FILES`].
pub fn r3_hot_path(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R3_FILES) {
        return;
    }
    hygiene_walk(path, lx, "R3", "a hot path", out);
}

/// R7: the same hygiene bar over the service layer ([`R7_FILES`]) — the
/// scheduler's own code must never abort or index out of bounds while it
/// holds other jobs' work.
pub fn r7_serve_hygiene(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R7_FILES) {
        return;
    }
    hygiene_walk(path, lx, "R7", "the service layer", out);
}

/// The shared R3/R7 hygiene walker: no `.unwrap()`/`.expect()`, no
/// `panic!`-family macros, no postfix `[` indexing — in non-test,
/// non-waived code. `context` names the protected region in diagnostics.
fn hygiene_walk(
    path: &str,
    lx: &Lexed,
    rule: &'static str,
    context: &str,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        // .unwrap( / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            // poison-recovery (`unwrap_or_else`) and friends are idents like
            // `unwrap_or_else`, lexed as one token — only exact matches fire.
            diag(
                out,
                path,
                t.line,
                rule,
                format!(
                    "`.{}()` in {context} — return a typed error instead",
                    t.text
                ),
            );
        }
        // panic! / todo! / unimplemented!
        if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            diag(
                out,
                path,
                t.line,
                rule,
                format!("`{}!` in {context} — return a typed error instead", t.text),
            );
        }
        // postfix indexing: `[` after a value (ident, `)`, `]`, `?`)
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let is_value = match p.kind {
                Kind::Ident => !NON_VALUE_KEYWORDS.contains(&p.text.as_str()),
                Kind::Punct => p.is_punct(')') || p.is_punct(']') || p.is_punct('?'),
                _ => false,
            };
            if is_value {
                diag(
                    out,
                    path,
                    t.line,
                    rule,
                    format!(
                        "`[...]` indexing in {context} — use `.get`/`.set`, views, \
                         or iterators"
                    ),
                );
            }
        }
    }
}

/// R4: `pub fn`s in pipeline modules return `Result`. `pub(crate)`/
/// `pub(super)` functions are not public API and are exempt.
pub fn r4_result_surface(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R4_FILES) {
        return;
    }
    let toks = &lx.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("pub") || toks[i].in_test {
            i += 1;
            continue;
        }
        // pub(crate)/pub(super): restricted visibility → exempt
        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(fn_tok) = toks.get(i + 1) else { break };
        if !fn_tok.is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 2) else { break };
        let line = fn_tok.line;
        // scan the signature: from `fn` to the body `{` at paren-depth 0
        let mut depth = 0usize;
        let mut has_result = false;
        let mut k = i + 2;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth = depth.saturating_sub(1);
            } else if (t.is_punct('{') || t.is_punct(';')) && depth == 0 {
                break;
            } else if t.is_ident("Result") {
                has_result = true;
            }
            k += 1;
        }
        if !has_result {
            diag(
                out,
                path,
                line,
                "R4",
                format!(
                    "public pipeline function `{}` does not return `Result` — \
                     surface failures as typed `EvdError`s",
                    name.text
                ),
            );
        }
        i = k + 1;
    }
}

/// R5a: the crate root must carry `#![forbid(unsafe_code)]`.
/// Called only for `crates/*/src/lib.rs` files.
pub fn r5_forbid_unsafe_attr(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let found = toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !found {
        diag(
            out,
            path,
            1,
            "R5",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// R5b: no `unsafe` keyword anywhere in non-test code (the attribute makes
/// the compiler enforce this too; the lint reports it with the rest).
pub fn r5_no_unsafe(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    for t in &lx.tokens {
        if t.is_ident("unsafe") && !t.in_test {
            diag(
                out,
                path,
                t.line,
                "R5",
                "`unsafe` is banned workspace-wide".to_string(),
            );
        }
    }
}

/// Helper for rules/tests: the first-token line of a lexed stream (or 1).
pub fn first_line(tokens: &[Token]) -> usize {
    tokens.first().map_or(1, |t| t.line)
}

// ---------------------------------------------------------------------------
// Call-graph rules (R8–R11)
// ---------------------------------------------------------------------------

/// Whether a path is under the R3/R7 hot-path hygiene bar (those files are
/// R8's roots, and their own panic sites are already policed file-locally).
fn is_hot_path_file(path: &str) -> bool {
    in_list(path, R3_FILES) || in_list(path, R7_FILES)
}

/// R8: transitive hot-path panic-freedom. Every function defined in an
/// R3/R7 file is a root; a panic-family call (`.unwrap()`, `.expect()`,
/// `panic!`, `todo!`, `unimplemented!`) in any function the roots can
/// reach through the call graph is flagged at the panic site, with the
/// discovery call chain in the message.
pub fn r8_transitive_panics(units: &[FileUnit], g: &Graph, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = (0..g.nodes.len())
        .filter(|&id| !g.def(units, id).in_test && is_hot_path_file(&g.file(units, id).path))
        .collect();
    let (visited, parent) = g.bfs(&roots);
    for (id, seen) in visited.iter().enumerate() {
        if !seen {
            continue;
        }
        let file = g.file(units, id);
        if is_hot_path_file(&file.path) {
            continue; // R3/R7 already cover these files line-locally
        }
        let d = g.def(units, id);
        if d.in_test {
            continue;
        }
        let Some((open, close)) = d.body else {
            continue;
        };
        for (line, what) in callgraph::panic_sites(&file.lx.tokens, open, close) {
            let trace = g.path_to(units, &parent, id);
            diag(
                out,
                &file.path,
                line,
                "R8",
                format!(
                    "`{what}` in `{}` is reachable from a hot path \
                     (call chain: {trace}) — return a typed error instead",
                    d.name
                ),
            );
        }
    }
}

/// Files whose loops carry the cancellation-seam contract (R9): the SBR
/// variants, bulge chasing, the pipeline driver, and the service layer.
pub const R9_FILES: &[&str] = &[
    "crates/band/src/sbr_dbr.rs",
    "crates/band/src/sbr_wy.rs",
    "crates/band/src/sbr_zy.rs",
    "crates/band/src/bulge.rs",
    "crates/band/src/bulge_packed.rs",
    "crates/band/src/multisweep.rs",
    "crates/core/src/pipeline.rs",
    "crates/serve/",
];

/// R9: cancellation-seam coverage. A loop in an [`R9_FILES`] file whose
/// body performs GEMM-scale work — a direct `.gemm(`/`.syr2k_update(`
/// dispatch or a call into a function that transitively reaches one —
/// must also reach a cancellation check (`is_cancelled`,
/// `cancel_requested`, `check_cancelled`) within the same iteration, the
/// block-column granularity PR 7 promised for job deadlines.
pub fn r9_cancel_seams(units: &[FileUnit], g: &Graph, out: &mut Vec<Diagnostic>) {
    let seed_set = |probe: &dyn Fn(&FileUnit, usize, usize) -> bool| -> Vec<usize> {
        (0..g.nodes.len())
            .filter(|&id| {
                g.def(units, id)
                    .body
                    .is_some_and(|(o, c)| probe(g.file(units, id), o, c))
            })
            .collect()
    };
    let gemm_reach = g.reaching(&seed_set(&|u, o, c| {
        callgraph::has_gemm_dispatch(&u.lx.tokens, o, c)
    }));
    let cancel_reach = g.reaching(&seed_set(&|u, o, c| {
        callgraph::has_cancel_check(&u.lx.tokens, o, c)
    }));
    for (fi, u) in units.iter().enumerate() {
        if !in_list(&u.path, R9_FILES) {
            continue;
        }
        let toks = &u.lx.tokens;
        for lp in &u.parsed.loops {
            if lp.in_test {
                continue;
            }
            let (open, close) = lp.body;
            let caller = g.node_at(units, fi, lp.kw_idx);
            let calls = parser::scan_calls(toks, open + 1, close);
            let transitively = |reach: &[bool]| {
                calls.iter().any(|call| {
                    g.resolve_call(units, caller, call)
                        .iter()
                        .any(|&id| reach[id])
                })
            };
            let gemm_scale =
                callgraph::has_gemm_dispatch(toks, open, close) || transitively(&gemm_reach);
            if !gemm_scale {
                continue;
            }
            let cancelled =
                callgraph::has_cancel_check(toks, open, close) || transitively(&cancel_reach);
            if !cancelled {
                diag(
                    out,
                    &u.path,
                    lp.line,
                    "R9",
                    format!(
                        "`{}` loop performs GEMM-scale work but never reaches a \
                         CancelToken check within an iteration — add a cancellation \
                         seam (deadlines stall without it)",
                        lp.kw
                    ),
                );
            }
        }
    }
}

/// Thread-coordination entry points banned inside parallel regions (R10a).
const R10_SYNC_IDENTS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "lock",
];

/// The pool implementation itself coordinates threads by definition; its
/// determinism is proven by the fixed-partition API contract, not by this
/// token scan.
const R10_SYNC_EXEMPT: &[&str] = &["shims/"];

/// R10a: no cross-thread coordination inside the arguments of
/// `for_each_chunk(…)` / `join(…)` parallel regions. Results must depend
/// only on the fixed partition, never on cross-thread interleaving —
/// an atomic RMW or a mutex inside the closure reintroduces
/// scheduling-order dependence that PR 4's contract forbids.
pub fn r10_parallel_sync(path: &str, u: &FileUnit, out: &mut Vec<Diagnostic>) {
    if in_list(path, R10_SYNC_EXEMPT) {
        return;
    }
    let toks = &u.lx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != Kind::Ident {
            continue;
        }
        if !(t.text == "for_each_chunk" || t.text == "join")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue; // the definition, not a call
        }
        if t.text == "join" && i >= 1 && toks[i - 1].is_punct('.') {
            continue; // JoinHandle::join, not the fork-join combinator
        }
        let close = parser::match_paren(toks, i + 1);
        for k in (i + 2)..close.min(toks.len()) {
            let s = &toks[k];
            if s.kind == Kind::Ident
                && !s.in_test
                && R10_SYNC_IDENTS.contains(&s.text.as_str())
                && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                diag(
                    out,
                    path,
                    s.line,
                    "R10",
                    format!(
                        "`{}` inside a `{}` parallel region — cross-thread \
                         coordination breaks the fixed-partition determinism \
                         contract",
                        s.text, t.text
                    ),
                );
            }
        }
    }
}

/// Iteration entry points whose order is nondeterministic on hash
/// collections (R10b).
const R10_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Names declared (param, field, or `let`) with a `HashMap`/`HashSet`
/// type anywhere in the file.
fn hash_typed_names(toks: &[Token]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != Kind::Ident
            || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        let mut depth = 0usize;
        let mut k = i + 2;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0
                && (t.is_punct(',')
                    || t.is_punct(';')
                    || t.is_punct('=')
                    || t.is_punct('{')
                    || t.is_punct('}'))
            {
                break;
            } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                out.insert(toks[i].text.clone());
                break;
            }
            k += 1;
        }
    }
    out
}

/// R10b: no iteration over `HashMap`/`HashSet` values in non-test code —
/// hash iteration order varies run to run, so anything it feeds stops
/// being reproducible. Keyed access is fine; iterate a `BTreeMap` or sort
/// the keys first.
pub fn r10_hash_iteration(path: &str, u: &FileUnit, out: &mut Vec<Diagnostic>) {
    let toks = &u.lx.tokens;
    let hashy = hash_typed_names(toks);
    if hashy.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        if t.kind == Kind::Ident
            && hashy.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == Kind::Ident && R10_ITER_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            diag(
                out,
                path,
                t.line,
                "R10",
                format!(
                    "iterating `{}` (HashMap/HashSet) — hash iteration order is \
                     nondeterministic; use a BTree collection or sort the keys",
                    t.text
                ),
            );
        }
        if t.is_ident("in") {
            let mut k = i + 1;
            while toks
                .get(k)
                .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
            {
                k += 1;
            }
            if let Some(n) = toks.get(k) {
                if n.kind == Kind::Ident
                    && hashy.contains(&n.text)
                    && toks.get(k + 1).is_some_and(|nn| nn.is_punct('{'))
                {
                    diag(
                        out,
                        path,
                        n.line,
                        "R10",
                        format!(
                            "iterating `{}` (HashMap/HashSet) — hash iteration order \
                             is nondeterministic; use a BTree collection or sort the \
                             keys",
                            n.text
                        ),
                    );
                }
            }
        }
    }
}

/// Identifiers that betray wall-clock or thread-identity data (R10c).
const R10_NONDET_IDENTS: &[&str] = &[
    "elapsed",
    "Instant",
    "now",
    "as_micros",
    "as_nanos",
    "as_millis",
    "as_secs_f64",
    "current_num_threads",
    "available_parallelism",
    "ThreadId",
    "thread_id",
];

/// Counter namespaces exempt from the bit-identical determinism contract:
/// `time.*` (wall clock, PR 6) and `par.*` (scheduling telemetry, PR 4).
const R10_EXEMPT_PREFIXES: &[&str] = &["time.", "par."];

/// R10c: counter/histogram writes (`.add(`, `.record(`, `.set_max(`)
/// whose value derives from wall-clock or thread identity must live in a
/// determinism-exempt namespace, so `diff`ing two runs' counters stays a
/// valid regression check.
pub fn r10_counter_namespace(path: &str, u: &FileUnit, out: &mut Vec<Diagnostic>) {
    let toks = &u.lx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test
            || t.kind != Kind::Ident
            || !matches!(t.text.as_str(), "add" | "record" | "set_max")
            || !(i >= 1 && toks[i - 1].is_punct('.'))
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let close = parser::match_paren(toks, i + 1).min(toks.len());
        // label: the first string literal in the argument list (either
        // direct or inside a `&format!("…")` builder)
        let Some(label_tok) = toks[i + 2..close].iter().find(|s| s.kind == Kind::Str) else {
            continue;
        };
        if R10_EXEMPT_PREFIXES
            .iter()
            .any(|p| label_tok.text.starts_with(p))
        {
            continue;
        }
        if let Some(s) = toks[i + 2..close]
            .iter()
            .find(|s| s.kind == Kind::Ident && R10_NONDET_IDENTS.contains(&s.text.as_str()))
        {
            diag(
                out,
                path,
                label_tok.line,
                "R10",
                format!(
                    "counter {:?} is written from wall-clock/thread-identity data \
                     (`{}`) outside the determinism-exempt `time.`/`par.` namespaces",
                    label_tok.text, s.text
                ),
            );
        }
    }
}

/// The canonical Mutex acquisition order in `crates/serve` (R11a). A
/// thread may only acquire a mutex *later* in this list than every mutex
/// it already holds.
pub const LOCK_ORDER: &[&str] = &["state", "cache", "workers"];

/// R11: lock/condvar discipline in the service layer.
///
/// * **a** — Mutexes named in [`LOCK_ORDER`] must be acquired in list
///   order; `lock(…)` calls are tracked per function body, with let-bound
///   guards held until `drop(guard)` or rebinding (block scopes are not
///   modeled — a guard is assumed held to end of function).
/// * **b** — condvar `.wait()`/`.wait_timeout()` (receiver named `*_cv`/
///   `cond*`) must sit inside a loop that re-checks its predicate.
/// * **c** — raw `.lock()` method calls are banned in favor of the
///   poison-recovering `lock()` helper, so one panicked job can never
///   wedge the scheduler behind a poisoned mutex.
pub fn r11_serve_locks(path: &str, u: &FileUnit, out: &mut Vec<Diagnostic>) {
    if !in_list(path, R7_FILES) {
        return;
    }
    let toks = &u.lx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != Kind::Ident {
            continue;
        }
        // (c) raw .lock(
        if t.text == "lock"
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            diag(
                out,
                path,
                t.line,
                "R11",
                "raw `Mutex::lock()` — use the poison-recovering `lock()` helper \
                 so a panicked job cannot wedge the scheduler"
                    .to_string(),
            );
        }
        // (b) condvar wait outside a predicate loop
        if (t.text == "wait" || t.text == "wait_timeout")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let recv = &toks[i - 2];
            let is_cv = recv.kind == Kind::Ident
                && (recv.text.ends_with("_cv") || recv.text == "cv" || recv.text.contains("cond"));
            if is_cv && !u.parsed.loops.iter().any(|l| l.body.0 < i && i < l.body.1) {
                diag(
                    out,
                    path,
                    t.line,
                    "R11",
                    format!(
                        "condvar `.{}()` outside a predicate re-check loop — a \
                         spurious wakeup would break the wait condition",
                        t.text
                    ),
                );
            }
        }
    }
    // (a) acquisition order, tracked per function body
    for f in &u.parsed.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let mut held: Vec<(String, usize)> = Vec::new(); // (guard var, order idx)
        for i in (open + 1)..close {
            let t = &toks[i];
            if t.kind != Kind::Ident {
                continue;
            }
            if t.text == "drop" && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                if let Some(v) = toks.get(i + 2).filter(|n| n.kind == Kind::Ident) {
                    held.retain(|(hv, _)| hv != &v.text);
                }
                continue;
            }
            if t.text != "lock"
                || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                || (i >= 1 && toks[i - 1].is_ident("fn"))
            {
                continue;
            }
            let p_close = parser::match_paren(toks, i + 1).min(toks.len());
            let Some(mutex) = toks[i + 2..p_close]
                .iter()
                .rev()
                .find(|n| n.kind == Kind::Ident)
            else {
                continue;
            };
            let Some(oi) = LOCK_ORDER.iter().position(|x| *x == mutex.text) else {
                continue;
            };
            for (hv, ho) in &held {
                if *ho > oi {
                    diag(
                        out,
                        path,
                        t.line,
                        "R11",
                        format!(
                            "`{}` acquired while `{hv}` (guarding `{}`) is held — \
                             canonical acquisition order is {}",
                            mutex.text,
                            LOCK_ORDER[*ho],
                            LOCK_ORDER.join(" → ")
                        ),
                    );
                }
            }
            // let-bound (or rebound) guard → held; statement temp → not.
            // The binding only holds the guard when `lock(…)` is the whole
            // initializer (`let st = lock(…);`) — a trailing method/field
            // chain (`let v = lock(…).get(&k);`) binds the chain's result
            // and drops the guard at end of statement.
            if i >= 2
                && toks[i - 1].is_punct('=')
                && !toks[i - 2].is_punct('=')
                && toks.get(p_close + 1).is_some_and(|n| n.is_punct(';'))
            {
                if let Some(v) = toks.get(i - 2).filter(|n| n.kind == Kind::Ident) {
                    held.retain(|(hv, _)| hv != &v.text);
                    held.push((v.text.clone(), oi));
                }
            }
        }
    }
}

/// `(mr, nr)` microkernel shapes instantiated per tier in
/// `crates/matrix/src/tile.rs` (`kernel_for`). Mirrored here because the
/// lint engine is dependency-free; `tile.rs`'s own tests
/// (`wide_candidates_are_all_instantiated_and_valid`,
/// `committed_table_is_valid_and_covers_both_scalars`) keep the real list
/// honest, and a mismatch shows up as R12 firing on a table the matrix
/// crate accepts (or vice versa).
const R12_SCALAR_KERNELS: &[(u64, u64)] = &[(4, 4), (8, 4), (8, 8), (16, 4)];
const R12_WIDE_KERNELS: &[(u64, u64)] = &[(8, 4), (8, 8), (16, 4), (16, 8), (32, 4), (32, 8)];
/// The blas3 column-chunk width every `nr` must divide (`blas3::NC`).
const R12_NC: u64 = 32;

/// R12: the committed GEMM tuning table
/// (`crates/matrix/tuning/default.tune`) parses and satisfies the
/// dispatch invariants `tile::shape_valid` enforces at load time:
/// `scalar ∈ {f32, f64}`, `class ∈ {square, outer, tall}`,
/// `tier ∈ {scalar, wide}`, `(mr, nr)` names an instantiated kernel,
/// `mc % mr == 0`, `NC % nr == 0`, and no `(scalar, class)` pair is
/// listed twice (dispatch would silently keep the first). The runtime
/// parser drops bad lines silently by design — panic-free loading — so
/// the lint is where a typo in a committed table becomes visible.
pub fn r12_tuning_table(path: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let mut entries = 0usize;
    let mut seen: Vec<(String, String)> = Vec::new();
    for (ln0, raw) in text.lines().enumerate() {
        let line = ln0 + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let f: Vec<&str> = body.split_whitespace().collect();
        let [scalar, class, tier, mr, nr, mc] = f.as_slice() else {
            diag(
                out,
                path,
                line,
                "R12",
                format!(
                    "malformed tuning entry ({} fields, want 6: scalar class \
                     tier mr nr mc) — the runtime parser drops this line \
                     silently",
                    f.len()
                ),
            );
            continue;
        };
        entries += 1;
        if !["f32", "f64"].contains(scalar) {
            diag(
                out,
                path,
                line,
                "R12",
                format!("unknown scalar `{scalar}` (want f32 or f64)"),
            );
        }
        if !["square", "outer", "tall"].contains(class) {
            diag(
                out,
                path,
                line,
                "R12",
                format!("unknown shape class `{class}` (want square, outer or tall)"),
            );
        }
        let (Ok(mr), Ok(nr), Ok(mc)) = (mr.parse::<u64>(), nr.parse::<u64>(), mc.parse::<u64>())
        else {
            diag(
                out,
                path,
                line,
                "R12",
                "non-numeric tile shape (mr nr mc must be integers)".to_string(),
            );
            continue;
        };
        let kernels = match *tier {
            "scalar" => R12_SCALAR_KERNELS,
            "wide" => R12_WIDE_KERNELS,
            other => {
                diag(
                    out,
                    path,
                    line,
                    "R12",
                    format!("unknown tier `{other}` (want scalar or wide)"),
                );
                continue;
            }
        };
        if !kernels.contains(&(mr, nr)) {
            diag(
                out,
                path,
                line,
                "R12",
                format!(
                    "no {tier}-tier microkernel instantiated for (mr, nr) = \
                     ({mr}, {nr}) — see `kernel_for` in crates/matrix/src/tile.rs"
                ),
            );
        }
        if mr == 0 || !mc.is_multiple_of(mr) {
            diag(
                out,
                path,
                line,
                "R12",
                format!("mc = {mc} is not a multiple of mr = {mr}"),
            );
        }
        if nr == 0 || !R12_NC.is_multiple_of(nr) {
            diag(
                out,
                path,
                line,
                "R12",
                format!("nr = {nr} does not divide the blas3 column chunk NC = {R12_NC}"),
            );
        }
        let key = (scalar.to_string(), class.to_string());
        if seen.contains(&key) {
            diag(
                out,
                path,
                line,
                "R12",
                format!(
                    "duplicate entry for ({scalar}, {class}) — dispatch keeps \
                     the first and this line is dead"
                ),
            );
        } else {
            seen.push(key);
        }
    }
    if entries == 0 {
        diag(
            out,
            path,
            1,
            "R12",
            "tuning table is missing or holds no entries — dispatch would \
             run entirely on built-in defaults"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tune_tests {
    use super::*;

    fn run(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        r12_tuning_table("crates/matrix/tuning/default.tune", text, &mut out);
        out.iter().map(|d| d.to_string()).collect()
    }

    #[test]
    fn valid_table_is_clean() {
        let text = "# comment\nf32 square wide 8 8 256 # 35 GF/s\nf64 tall scalar 8 4 128\n";
        assert_eq!(run(text), Vec::<String>::new());
    }

    #[test]
    fn each_invariant_violation_fires() {
        // wrong field count
        assert!(run("f32 square wide 8 8\n")[0].contains("malformed"));
        // unknown scalar / class / tier
        assert!(run("f16 square wide 8 8 256\n")[0].contains("unknown scalar"));
        assert!(run("f32 round wide 8 8 256\n")[0].contains("unknown shape class"));
        assert!(run("f32 square simd 8 8 256\n")[0].contains("unknown tier"));
        // non-numeric shape
        assert!(run("f32 square wide a 8 256\n")[0].contains("non-numeric"));
        // uninstantiated kernel shape
        assert!(run("f32 square wide 12 8 24\n")[0].contains("no wide-tier microkernel"));
        // mc % mr and NC % nr
        assert!(run("f32 square wide 8 8 100\n")[0].contains("not a multiple"));
        assert!(run("f32 square scalar 4 4 64\nf32 outer wide 8 12 24\n")
            .iter()
            .any(|d| d.contains("does not divide")));
        // duplicate (scalar, class)
        assert!(run("f32 square wide 8 8 256\nf32 square scalar 4 4 64\n")
            .iter()
            .any(|d| d.contains("duplicate entry")));
    }

    #[test]
    fn empty_table_is_flagged_once() {
        let d = run("# only comments\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("no entries"));
    }
}
