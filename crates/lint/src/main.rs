#![forbid(unsafe_code)]
//! CLI entry point: `cargo run -p tcevd-lint` from anywhere in the
//! workspace.
//!
//! ```text
//! tcevd-lint [--json] [--root <dir>] [path-prefix …]
//! ```
//!
//! Prints `file:line: RULE: message` per finding (or a JSON array with
//! `--json`) and exits non-zero when anything fires. Positional arguments
//! are workspace-relative path prefixes (e.g. `crates/serve`) that
//! restrict which files' findings are reported — the call graph is still
//! built from the whole workspace, so transitive rules stay sound, but
//! the registry-global dead-label/cost checks are skipped.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The binary is compiled from crates/lint; the workspace root is two
    // levels up from its manifest. Falls back to the current directory so
    // a copied binary can still run from a checkout root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let candidate = manifest.join("..").join("..");
    if candidate.join("Cargo.toml").is_file() {
        return candidate;
    }
    PathBuf::from(".")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: tcevd-lint [--json] [--root <dir>] [path-prefix ...]");
                return ExitCode::SUCCESS;
            }
            _ => filters.push(a.trim_end_matches('/').to_string()),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let diags = tcevd_lint::lint_workspace_filtered(&root, &filters);
    if json {
        let mut lines = Vec::with_capacity(diags.len());
        for d in &diags {
            lines.push(format!(
                "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                json_escape(d.rule),
                json_escape(&d.message)
            ));
        }
        if lines.is_empty() {
            println!("[]");
        } else {
            println!("[\n{}\n]", lines.join(",\n"));
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("tcevd-lint: clean");
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("tcevd-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
