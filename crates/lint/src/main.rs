#![forbid(unsafe_code)]
//! CLI entry point: `cargo run -p tcevd-lint` from anywhere in the
//! workspace. Prints `file:line: RULE: message` per finding and exits
//! non-zero when anything fires.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The binary is compiled from crates/lint; the workspace root is two
    // levels up from its manifest. Falls back to the current directory so
    // a copied binary can still run from a checkout root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let candidate = manifest.join("..").join("..");
    if candidate.join("Cargo.toml").is_file() {
        return candidate;
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => workspace_root(),
    };
    let diags = tcevd_lint::lint_workspace(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("tcevd-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("tcevd-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
