//! A dependency-free item-level parser built on the token stream from
//! [`crate::lexer`] — just enough structure for the call-graph rules
//! (R8–R11), with no `syn`/`proc-macro2`.
//!
//! Recovers, per file:
//! * **function items** — name, enclosing `impl` owner type, signature
//!   span, body span, whether the first parameter is `self`, and a map of
//!   local/parameter names to candidate type identifiers (every
//!   capitalized identifier in the declared type, so `Arc<Shared>` offers
//!   both `Arc` and `Shared`);
//! * **loop constructs** — `for … in … { }`, `while … { }`, `loop { }`
//!   with their body token spans (`impl Trait for Type` and `for<'a>`
//!   binders are not loops and are skipped);
//! * **call expressions** on demand over any token range — free calls
//!   (`factor_panel(…)`), path calls (`CancelToken::is_cancelled(…)`,
//!   turbofish included), and method calls (`ctx.gemm(…)`) with a
//!   best-effort receiver classification.
//!
//! The recovered structure is heuristic by design; the known
//! false-negative classes are documented in DESIGN.md §6.

use std::collections::BTreeMap;

use crate::lexer::{Kind, Lexed, Token};

/// Rust keywords that can directly precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` block's type (last path segment), if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Body token span `[open brace, close brace]`, `None` for
    /// body-less declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Whether the parameter list starts with (a form of) `self`.
    pub has_self: bool,
    /// Whether the `fn` token sits in a test region.
    pub in_test: bool,
    /// Local/parameter name → candidate type idents (capitalized idents
    /// from the declared type; e.g. `Arc<Shared>` → `[Arc, Shared]`).
    pub locals: BTreeMap<String, Vec<String>>,
}

/// One `for`/`while`/`loop` construct.
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// The loop keyword.
    pub kw: &'static str,
    /// 1-based line of the keyword.
    pub line: usize,
    /// Token index of the keyword.
    pub kw_idx: usize,
    /// Body token span `[open brace, close brace]`.
    pub body: (usize, usize),
    /// Whether the loop sits in a test region.
    pub in_test: bool,
}

/// Receiver classification for a call expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.m(…)` — resolve within the enclosing impl's owner type.
    SelfRecv,
    /// `name.m(…)` — a variable or field name precedes the dot.
    Named(String),
    /// `Type::m(…)` / `Type::<T>::m(…)` — explicit owner path.
    Type(String),
    /// `expr).m(…)`, `…].m(…)`, literal receivers — type unknown.
    Opaque,
    /// A free (or module-path) call with no receiver.
    Free,
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called method/function name (last path segment).
    pub name: String,
    pub recv: Receiver,
    /// Token index of the name.
    pub idx: usize,
    /// 1-based line of the name token.
    pub line: usize,
}

/// Parsed view of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub loops: Vec<LoopSpan>,
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open` (or the last token).
pub fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Skip a `<…>` generic-argument list starting at `open` (a `<`); returns
/// the index just past the matching `>`. Lexed `>` tokens are single
/// characters, so `>>` closes two levels.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('<') {
            depth += 1;
        } else if toks[k].is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        } else if toks[k].is_punct('{') || toks[k].is_punct(';') {
            // malformed / not actually generics — bail out
            return k;
        }
        k += 1;
    }
    toks.len()
}

/// The owner type of an `impl` header starting at `impl_idx`: the last
/// path segment of the implemented-for type (`impl<T> Mat<T>` → `Mat`,
/// `impl Drop for SpanGuard` → `SpanGuard`). Returns `(owner, body `{`)`.
fn impl_owner(toks: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut k = impl_idx + 1;
    if toks.get(k).is_some_and(|t| t.is_punct('<')) {
        k = skip_angles(toks, k);
    }
    // Collect path segments up to the body `{`, restarting after `for`.
    let mut owner: Option<String> = None;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('{') {
            return owner.map(|o| (o, k));
        }
        if t.is_ident("for") {
            owner = None; // `impl Trait for Type` — the type comes after
            k += 1;
            continue;
        }
        if t.is_ident("where") {
            // `impl<T> Foo<T> where …` — owner already collected
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            continue;
        }
        if t.kind == Kind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            owner = Some(t.text.clone());
        }
        if t.is_punct('<') {
            k = skip_angles(toks, k);
            continue;
        }
        k += 1;
    }
    None
}

/// A `trait Name<…>: Bounds {` header starting at `trait_idx`: the trait
/// name and the body `{`. `None` for `dyn Trait`-style uses without a body.
fn trait_header(toks: &[Token], trait_idx: usize) -> Option<(String, usize)> {
    let name = toks.get(trait_idx + 1)?;
    if name.kind != Kind::Ident {
        return None;
    }
    let mut k = trait_idx + 2;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            return Some((name.text.clone(), k));
        }
        if toks[k].is_punct(';') {
            return None;
        }
        if toks[k].is_punct('<') {
            k = skip_angles(toks, k);
            continue;
        }
        k += 1;
    }
    None
}

/// Capitalized identifiers in a type-token span, in order.
fn type_candidates(toks: &[Token], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    for t in toks.iter().take(end).skip(start) {
        if t.kind == Kind::Ident
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            && !out.contains(&t.text)
        {
            out.push(t.text.clone());
        }
    }
    out
}

/// Parse one file's token stream into items and loops.
pub fn parse(lx: &Lexed) -> ParsedFile {
    let toks = &lx.tokens;
    let mut out = ParsedFile::default();

    // Pass 1: impl (and trait) block ranges with owner types. Trait
    // blocks count so default method bodies resolve like methods.
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            if let Some((owner, open)) = impl_owner(toks, i) {
                let close = match_brace(toks, open);
                impls.push((open, close, owner));
                i = open + 1;
                continue;
            }
        }
        if toks[i].is_ident("trait") {
            if let Some((name, open)) = trait_header(toks, i) {
                let close = match_brace(toks, open);
                impls.push((open, close, name));
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    let owner_at = |idx: usize| -> Option<String> {
        impls
            .iter()
            .filter(|(o, c, _)| *o < idx && idx < *c)
            .min_by_key(|(o, c, _)| c - o) // innermost enclosing impl
            .map(|(_, _, n)| n.clone())
    };

    // Pass 2: fn items.
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != Kind::Ident {
            i += 1;
            continue;
        }
        let mut k = i + 2;
        if toks.get(k).is_some_and(|t| t.is_punct('<')) {
            k = skip_angles(toks, k);
        }
        if !toks.get(k).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let params_open = k;
        let params_close = match_paren(toks, params_open);
        // Find the body `{` (or `;` for a declaration) after the params.
        let mut b = params_close + 1;
        let mut body = None;
        while b < toks.len() {
            if toks[b].is_punct('{') {
                body = Some((b, match_brace(toks, b)));
                break;
            }
            if toks[b].is_punct(';') {
                break;
            }
            if toks[b].is_punct('<') {
                b = skip_angles(toks, b);
                continue;
            }
            b += 1;
        }
        let mut def = FnDef {
            name: name_tok.text.clone(),
            owner: owner_at(i),
            line: toks[i].line,
            fn_idx: i,
            body,
            has_self: false,
            in_test: toks[i].in_test,
            locals: BTreeMap::new(),
        };
        collect_params(toks, params_open, params_close, &mut def);
        if let Some((open, close)) = body {
            collect_locals(toks, open, close, &mut def.locals);
        }
        out.fns.push(def);
        i = params_close + 1;
    }

    // Pass 3: loops.
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let kw = if t.is_ident("for") {
            "for"
        } else if t.is_ident("while") {
            "while"
        } else if t.is_ident("loop") {
            "loop"
        } else {
            i += 1;
            continue;
        };
        if let Some(lp) = parse_loop(toks, i, kw) {
            out.loops.push(lp);
        }
        i += 1;
    }
    out
}

/// Parse a loop construct at keyword index `i`; `None` when the keyword is
/// not a loop (`impl … for …`, `for<'a>` binders, `loop` as a path ident).
fn parse_loop(toks: &[Token], i: usize, kw: &'static str) -> Option<LoopSpan> {
    match kw {
        "loop" => {
            let open = i + 1;
            toks.get(open).filter(|t| t.is_punct('{'))?;
            Some(LoopSpan {
                kw,
                line: toks[i].line,
                kw_idx: i,
                body: (open, match_brace(toks, open)),
                in_test: toks[i].in_test,
            })
        }
        "for" => {
            // `for<'a>` HRTB binders are not loops.
            if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
                return None;
            }
            // A loop-`for` has an `in` before its body `{`; an
            // `impl Trait for Type {` header does not.
            let mut k = i + 1;
            let mut saw_in = false;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') {
                    k = match_paren(toks, k) + 1;
                    continue;
                }
                if t.is_ident("in") {
                    saw_in = true;
                }
                if t.is_punct('{') {
                    if !saw_in {
                        return None;
                    }
                    return Some(LoopSpan {
                        kw,
                        line: toks[i].line,
                        kw_idx: i,
                        body: (k, match_brace(toks, k)),
                        in_test: toks[i].in_test,
                    });
                }
                if t.is_punct(';') {
                    return None;
                }
                k += 1;
            }
            None
        }
        _ => {
            // while / while let: body is the first `{` at paren depth 0.
            let mut k = i + 1;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') {
                    k = match_paren(toks, k) + 1;
                    continue;
                }
                if t.is_punct('{') {
                    return Some(LoopSpan {
                        kw,
                        line: toks[i].line,
                        kw_idx: i,
                        body: (k, match_brace(toks, k)),
                        in_test: toks[i].in_test,
                    });
                }
                if t.is_punct(';') {
                    return None;
                }
                k += 1;
            }
            None
        }
    }
}

/// Record parameter names and their candidate types (and `self`).
fn collect_params(toks: &[Token], open: usize, close: usize, def: &mut FnDef) {
    let mut k = open + 1;
    let mut seg_start = k;
    let mut depth = 0usize;
    while k <= close {
        let t = &toks[k];
        let seg_ends = k == close || (depth == 0 && t.is_punct(','));
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth = depth.saturating_sub(1);
        }
        if seg_ends {
            // segment toks[seg_start..k]
            let name = (seg_start..k).find(|&j| {
                toks[j].kind == Kind::Ident && !matches!(toks[j].text.as_str(), "mut" | "ref")
            });
            if let Some(nj) = name {
                if toks[nj].text == "self" {
                    def.has_self = true;
                } else if toks.get(nj + 1).is_some_and(|t| t.is_punct(':')) {
                    let cands = type_candidates(toks, nj + 2, k);
                    if !cands.is_empty() {
                        def.locals.insert(toks[nj].text.clone(), cands);
                    }
                }
            }
            seg_start = k + 1;
        }
        k += 1;
    }
}

/// Record `let`-bound locals with inferable types inside a body span:
/// explicit annotations (`let x: Mat<f32> = …`) and constructor paths
/// (`let x = Mat::zeros(…)` / `let x = TraceSink::enabled()`).
fn collect_locals(
    toks: &[Token],
    open: usize,
    close: usize,
    locals: &mut BTreeMap<String, Vec<String>>,
) {
    let mut k = open;
    while k < close {
        if !toks[k].is_ident("let") {
            k += 1;
            continue;
        }
        let mut n = k + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        let Some(name) = toks.get(n).filter(|t| t.kind == Kind::Ident) else {
            k += 1;
            continue;
        };
        if toks.get(n + 1).is_some_and(|t| t.is_punct(':')) {
            // explicit type up to `=` or `;`
            let mut e = n + 2;
            while e < close && !toks[e].is_punct('=') && !toks[e].is_punct(';') {
                e += 1;
            }
            let cands = type_candidates(toks, n + 2, e);
            if !cands.is_empty() {
                locals.insert(name.text.clone(), cands);
            }
        } else if toks.get(n + 1).is_some_and(|t| t.is_punct('=')) {
            if let Some(first) = toks.get(n + 2) {
                if first.kind == Kind::Ident
                    && first
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                {
                    locals.insert(name.text.clone(), vec![first.text.clone()]);
                }
            }
        }
        k = n + 1;
    }
}

/// Scan `toks[start..end]` for call expressions.
pub fn scan_calls(toks: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind != Kind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // The name must be followed by `(`, optionally through a
        // turbofish: `name::<T, 4>(…)`.
        let mut after = i + 1;
        if toks.get(after).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 2).is_some_and(|t| t.is_punct('<'))
        {
            after = skip_angles(toks, after + 2);
        }
        if !toks.get(after).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        // Not a definition (`fn name(`).
        if i >= 1 && toks[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        let recv = classify_receiver(toks, i);
        out.push(CallSite {
            name: t.text.clone(),
            recv,
            idx: i,
            line: t.line,
        });
        i += 1;
    }
    out
}

/// Classify what precedes the called name at index `i`.
fn classify_receiver(toks: &[Token], i: usize) -> Receiver {
    // Method call: `.name(`
    if i >= 1 && toks[i - 1].is_punct('.') {
        let Some(prev) = (i >= 2).then(|| &toks[i - 2]) else {
            return Receiver::Opaque;
        };
        return match prev.kind {
            Kind::Ident if prev.text == "self" => Receiver::SelfRecv,
            Kind::Ident => Receiver::Named(prev.text.clone()),
            _ => Receiver::Opaque,
        };
    }
    // Path call: `…::name(` — walk the `seg::seg::name` chain backwards.
    if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        let mut j = i - 2;
        let mut head = None;
        loop {
            // before the `::` sits either `>` (turbofish/generics) or an ident
            if j >= 1 && toks[j - 1].is_punct('>') {
                // skip back over `<…>` — find the matching `<`
                let mut depth = 0usize;
                let mut b = j - 1;
                loop {
                    if toks[b].is_punct('>') {
                        depth += 1;
                    } else if toks[b].is_punct('<') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if b == 0 {
                        break;
                    }
                    b -= 1;
                }
                j = b;
                if j == 0 {
                    break;
                }
            }
            if j >= 1 && toks[j - 1].kind == Kind::Ident {
                head = Some(&toks[j - 1]);
                if j >= 3 && toks[j - 2].is_punct(':') && toks[j - 3].is_punct(':') {
                    j -= 2;
                    continue;
                }
            }
            break;
        }
        if let Some(h) = head {
            if h.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                return Receiver::Type(h.text.clone());
            }
        }
        return Receiver::Free;
    }
    Receiver::Free
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src, false))
    }

    #[test]
    fn fn_items_with_impl_owners_and_self() {
        let src = r#"
fn free(a: &Mat<f32>, n: usize) -> usize { n }
impl<T: Scalar> Mat<T> {
    pub fn rows(&self) -> usize { self.r }
    fn helper(x: Arc<Shared>) {}
}
impl Drop for SpanGuard {
    fn drop(&mut self) {}
}
trait Sig { fn decl(&self); }
"#;
        let p = parse_src(src);
        let names: Vec<(&str, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("rows", Some("Mat"), true),
                ("helper", Some("Mat"), false),
                ("drop", Some("SpanGuard"), true),
                ("decl", Some("Sig"), true), // trait decl: owned, no body
            ]
        );
        assert!(p.fns[4].body.is_none());
        assert_eq!(p.fns[0].locals.get("a"), Some(&vec!["Mat".to_string()]));
        assert_eq!(
            p.fns[2].locals.get("x"),
            Some(&vec!["Arc".to_string(), "Shared".to_string()])
        );
    }

    #[test]
    fn let_bindings_infer_candidate_types() {
        let src = r#"
fn f() {
    let mut w: Mat<f32> = Mat::zeros(1, 1);
    let sinkish = TraceSink::enabled();
    let n = 3;
    let v = vec![1];
}
"#;
        let p = parse_src(src);
        let locals = &p.fns[0].locals;
        assert_eq!(locals.get("w"), Some(&vec!["Mat".to_string()]));
        assert_eq!(locals.get("sinkish"), Some(&vec!["TraceSink".to_string()]));
        assert!(locals.get("n").is_none());
        assert!(locals.get("v").is_none());
    }

    #[test]
    fn loops_are_found_and_impl_for_is_not_a_loop() {
        let src = r#"
impl Iterator for Walker { fn next(&mut self) -> Option<u8> { None } }
fn f(xs: &[u8]) {
    for x in xs { work(x); }
    while let Some(v) = pop() { use_it(v); }
    loop { break; }
    let hrtb: for<'a> fn(&'a u8) = id;
}
"#;
        let p = parse_src(src);
        let kws: Vec<&str> = p.loops.iter().map(|l| l.kw).collect();
        assert_eq!(kws, vec!["for", "while", "loop"]);
    }

    #[test]
    fn calls_classify_receivers() {
        let src = r#"
fn f(ctx: &GemmContext) {
    free_call(1);
    ctx.gemm("label", x);
    self.tid();
    CancelToken::is_cancelled(&t);
    microkernel::<f32, 8, 4>(kc, a);
    lock(&shared.state).jobs.get(&id);
    compute(a).finish();
    crate::fault::take_cancel_failure();
}
"#;
        let p = parse(&lex(src, false));
        let body = p.fns[0].body.unwrap();
        let calls = scan_calls(&lex(src, false).tokens, body.0, body.1);
        let find = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(find("free_call").recv, Receiver::Free);
        assert_eq!(find("gemm").recv, Receiver::Named("ctx".to_string()));
        assert_eq!(find("tid").recv, Receiver::SelfRecv);
        assert_eq!(
            find("is_cancelled").recv,
            Receiver::Type("CancelToken".to_string())
        );
        assert_eq!(find("microkernel").recv, Receiver::Free);
        assert_eq!(find("lock").recv, Receiver::Free);
        assert_eq!(find("get").recv, Receiver::Named("jobs".to_string()));
        assert_eq!(find("finish").recv, Receiver::Opaque); // receiver is `)`
        assert_eq!(find("take_cancel_failure").recv, Receiver::Free);
    }

    #[test]
    fn nested_fns_and_closures_keep_outer_body_span() {
        let src = "fn outer() { let c = |x: u8| { inner(x) }; c(1); }";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        let (open, close) = p.fns[0].body.unwrap();
        let toks = lex(src, false).tokens;
        assert!(toks[open].is_punct('{'));
        assert_eq!(close, toks.len() - 1);
    }

    #[test]
    fn raw_ident_fns_match_their_call_sites() {
        // `r#loop` lexes as one Ident (prefix kept), so it is neither the
        // `loop` keyword nor a stray `r` — definition and call site agree.
        let src = "fn r#loop() {}\nfn caller() { r#loop(); }";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["r#loop", "caller"]);
        let toks = lex(src, false).tokens;
        let caller = &p.fns[1];
        let (open, close) = caller.body.unwrap();
        let calls = scan_calls(&toks, open, close);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "r#loop");
        assert_eq!(calls[0].recv, Receiver::Free);
        assert!(p.loops.is_empty(), "`r#loop` must not open a loop span");
    }
}
