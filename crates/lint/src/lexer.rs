//! A hand-rolled token-level lexer for Rust source — just enough syntax for
//! the lint rules, with no `syn`/`proc-macro2` dependency.
//!
//! Understands (so the rules never fire inside them):
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any number of `#`s);
//! * char literals vs. lifetimes (`'a'` vs `'a`);
//!
//! and produces a flat token stream where every token carries its 1-based
//! line and an `in_test` flag. Test regions are marked by a post-pass that
//! brace-matches the item following a `#[test]` / `#[cfg(test)]`-style
//! attribute (any attribute whose tokens include the ident `test`, except
//! under `not(…)`).
//!
//! Comments are also scanned for waiver directives:
//! `// tcevd-lint: allow(R3)` (comma-separated rule ids allowed). A waiver
//! on line `L` suppresses matching diagnostics on lines `L..=L+2`, so the
//! directive sits on or just above the offending line.

/// Token classes the rules dispatch on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// String literal (text = decoded-enough contents, escapes left as-is).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Kind,
    /// Identifier text, string contents, or the punctuation character.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// Inside a `#[test]` / `#[cfg(test)]` item (or a test-only file).
    pub in_test: bool,
}

impl Token {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

/// A `// tcevd-lint: allow(Rn, …)` directive found in a comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// 1-based line the directive's comment starts on.
    pub line: usize,
    /// Rule id, e.g. `"R3"`.
    pub rule: String,
}

/// The lexed file: token stream plus the waivers its comments declared.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub waivers: Vec<Waiver>,
}

impl Lexed {
    /// Whether a diagnostic for `rule` at `line` is suppressed by a waiver
    /// on lines `line-2 ..= line`.
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && w.line <= line && line <= w.line + 2)
    }
}

/// Lex `src` into tokens + waivers and mark test regions.
/// `all_test` pre-marks every token (for files under `tests/` etc.).
pub fn lex(src: &str, all_test: bool) -> Lexed {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    let mut lexed = lx.out;
    if all_test {
        for t in &mut lexed.tokens {
            t.in_test = true;
        }
    } else {
        mark_test_regions(&mut lexed.tokens);
    }
    lexed
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: Kind, text: String, line: usize) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' if self.peek(1) == b'#'
                    && (self.peek(2) == b'_' || self.peek(2).is_ascii_alphabetic()) =>
                {
                    self.raw_ident()
                }
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string_lit(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => {
                    let line = self.line;
                    let c = self.bump();
                    self.push(Kind::Punct, (c as char).to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.scan_waivers(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump();
        self.bump(); // consume /*
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.scan_waivers(&text, line);
    }

    /// Parse every `tcevd-lint: allow(R1, R4)` directive in a comment.
    fn scan_waivers(&mut self, comment: &str, line: usize) {
        let mut rest = comment;
        while let Some(i) = rest.find("tcevd-lint:") {
            rest = &rest[i + "tcevd-lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                break;
            };
            let after = &rest[open + "allow(".len()..];
            let Some(close) = after.find(')') else { break };
            for rule in after[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    self.out.waivers.push(Waiver {
                        line,
                        rule: rule.to_string(),
                    });
                }
            }
            rest = &after[close..];
        }
    }

    /// Try `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`; returns false if the `r`/`b`
    /// is just an identifier start.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut off = 1;
        if self.peek(0) == b'b' && self.peek(1) == b'r' {
            off = 2;
        }
        let mut hashes = 0;
        while self.peek(off + hashes) == b'#' {
            hashes += 1;
        }
        let is_raw = self.peek(0) != b'b' || off == 2 || hashes > 0;
        // r/br with hashes-or-quote next → raw string; b"…" → plain byte str
        if self.peek(off + hashes) != b'"' {
            return false;
        }
        if (self.peek(0) == b'r' || off == 2) && is_raw {
            let line = self.line;
            for _ in 0..off + hashes + 1 {
                self.bump();
            }
            let start = self.pos;
            // scan for `"` followed by `hashes` hashes
            loop {
                if self.pos >= self.src.len() {
                    break;
                }
                if self.peek(0) == b'"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        for _ in 0..hashes + 1 {
                            self.bump();
                        }
                        self.push(Kind::Str, text, line);
                        return true;
                    }
                }
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(Kind::Str, text, line);
            return true;
        }
        // b"…": consume the b, fall through to the plain string lexer
        self.bump();
        self.string_lit();
        true
    }

    fn string_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(Kind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Lifetime: 'ident NOT followed by a closing quote.
        if (self.peek(1).is_ascii_alphabetic() || self.peek(1) == b'_') && self.peek(2) != b'\'' {
            self.bump(); // '
            let start = self.pos;
            while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(Kind::Lifetime, text, line);
            return;
        }
        self.bump(); // opening '
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        self.push(Kind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        // fractional part — but not the `..` of a range
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // exponent sign: 1.5e-3
        if (self.peek(0) == b'-' || self.peek(0) == b'+')
            && self
                .src
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|c| *c == b'e' || *c == b'E')
        {
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(Kind::Num, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(Kind::Ident, text, line);
    }

    /// Raw identifier `r#match`: one Ident token keeping the `r#` prefix,
    /// so `r#fn`/`r#match` never read as keywords to the item parser while
    /// definitions and call sites still agree on the same name.
    fn raw_ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // r
        self.bump(); // #
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(Kind::Ident, text, line);
    }
}

/// Mark the item following every test attribute (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, …) as `in_test`, by brace-matching its body.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = scan_attribute(tokens, i + 1) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match scan_attribute(tokens, j + 1) {
                Some((end, _)) => j = end + 1,
                None => break,
            }
        }
        // Mark to the end of the item: the matching `}` of its first body
        // brace, or a `;` before any brace (e.g. `#[cfg(test)] use …;`).
        let mut depth = 0usize;
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].kind == Kind::Punct {
                match tokens[k].text.as_bytes().first() {
                    Some(b'{') => depth += 1,
                    Some(b'}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(b';') if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let end = (k + 1).min(tokens.len());
        for t in tokens.iter_mut().take(end).skip(i) {
            t.in_test = true;
        }
        i = k + 1;
    }
}

/// Scan an attribute starting at its `[` token; returns (index of the
/// matching `]`, whether it is a test attribute). A `test` ident under
/// `not(…)` does NOT count (`#[cfg(not(test))]` guards non-test code).
fn scan_attribute(tokens: &[Token], open: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut k = open;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.kind == Kind::Punct {
            match t.text.as_bytes().first() {
                Some(b'[') => depth += 1,
                Some(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((k, is_test));
                    }
                }
                _ => {}
            }
        } else if t.is_ident("test") {
            let negated = k >= 2
                && tokens
                    .get(k.wrapping_sub(2))
                    .is_some_and(|p| p.is_ident("not"))
                && tokens
                    .get(k.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct('('));
            if !negated {
                is_test = true;
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_invisible() {
        let lx = lex(
            r##"
// ctx.gemm("fake_label", …) in a comment
/* nested /* block */ ctx.gemm("x") */
let s = "gemm(\"quoted\")";
let r = r#"raw "gemm" body"#;
let c = '"';
real_ident();
"##,
            false,
        );
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "let", "r", "let", "c", "real_ident"]);
        let strs: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].contains("raw"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex(
            "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }",
            false,
        );
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .count();
        let chars = lx.tokens.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = r#"
fn live() { a.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { b.unwrap(); }
}
fn live2() {}
#[test]
fn one_test() { c.unwrap(); }
fn live3() {}
"#;
        let lx = lex(src, false);
        let find = |name: &str| lx.tokens.iter().find(|t| t.is_ident(name)).unwrap();
        assert!(!find("live").in_test);
        assert!(find("helper").in_test);
        assert!(!find("live2").in_test);
        assert!(find("one_test").in_test);
        assert!(!find("live3").in_test);
    }

    #[test]
    fn cfg_all_test_marks_and_not_test_does_not() {
        let src = r#"
#[cfg(all(test, feature = "sanitize"))]
mod sanitize_tests { fn t() { x.unwrap(); } }
#[cfg(not(test))]
fn shipped() { y.unwrap(); }
"#;
        let lx = lex(src, false);
        let find = |name: &str| lx.tokens.iter().find(|t| t.is_ident(name)).unwrap();
        assert!(find("t").in_test);
        assert!(!find("shipped").in_test);
    }

    #[test]
    fn waivers_parse_and_scope() {
        let src = "// tcevd-lint: allow(R3, R4)\nfn f() {}\n\n\nfn g() {}\n";
        let lx = lex(src, false);
        assert_eq!(lx.waivers.len(), 2);
        assert!(lx.waived("R3", 1));
        assert!(lx.waived("R3", 2));
        assert!(lx.waived("R4", 3));
        assert!(!lx.waived("R3", 4)); // out of the 3-line window
        assert!(!lx.waived("R1", 2)); // different rule
    }

    #[test]
    fn raw_identifiers_lex_as_single_tokens() {
        let lx = lex("fn r#try(x: u32) {}\nlet r#match = r#try(1);\n", false);
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            idents,
            ["fn", "r#try", "x", "u32", "let", "r#match", "r#try"]
        );
        assert!(
            !lx.tokens.iter().any(|t| t.is_punct('#')),
            "no stray `#` puncts from raw identifiers"
        );
    }

    #[test]
    fn raw_strings_with_extra_hashes_nest_quotes() {
        let lx = lex(r####"let s = r##"has "# inside"##; after();"####, false);
        let strs: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r##"has "# inside"##]);
        assert!(
            lx.tokens.iter().any(|t| t.is_ident("after")),
            "lexing resumes cleanly after the raw string"
        );
    }

    #[test]
    fn doc_comments_containing_fn_are_invisible() {
        let src = "/// fn fake_item() { a.unwrap(); }\n\
                   //! fn also_fake() {}\n\
                   fn real() {}\n";
        let lx = lex(src, false);
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "real"]);
    }

    #[test]
    fn turbofish_lifetimes_are_not_chars() {
        let lx = lex("foo::<'a, 'static>(x); let c = 'c';", false);
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == Kind::Lifetime)
                .count(),
            2
        );
        assert_eq!(lx.tokens.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn braces_in_strings_do_not_derail_test_regions() {
        let src = r##"
#[cfg(test)]
mod tests {
    fn helper() { let s = r#"{"#; let t = "}"; }
}
fn live_after() {}
"##;
        let lx = lex(src, false);
        let find = |name: &str| lx.tokens.iter().find(|t| t.is_ident(name)).unwrap();
        assert!(find("helper").in_test);
        assert!(
            !find("live_after").in_test,
            "test region ends at the token-level brace match, not at string braces"
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lx = lex("for i in 0..n { x(1.5e-3); }", false);
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Num && t.text == "0"));
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Num && t.text == "1.5e-3"));
        assert_eq!(
            lx.tokens.iter().filter(|t| t.is_punct('.')).count(),
            2,
            "range dots survive"
        );
    }
}
