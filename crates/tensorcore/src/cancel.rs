//! Cooperative cancellation for long-running pipeline runs.
//!
//! A [`CancelToken`] is a cheap-clone handle the service layer attaches to
//! a [`GemmContext`](crate::GemmContext) (via `GemmContext::with_cancel`)
//! before starting a job. The pipeline checks it *between* stages — at the
//! same seams where the sanitizer report and finiteness gates run — so a
//! cancelled or deadline-exhausted job stops at the next seam with a typed
//! error instead of burning its remaining stages. Checks are cooperative:
//! a stage in flight always runs to its seam, which keeps every completed
//! run bit-identical to an uncancelled one (cancellation only ever chooses
//! *whether* the next stage runs, never how it computes).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock compute budget: expiry makes the token report cancelled.
    deadline: Option<Instant>,
}

/// Shared cancellation flag with an optional wall-clock deadline.
///
/// ```
/// use tcevd_tensorcore::CancelToken;
/// let t = CancelToken::new();
/// assert!(!t.is_cancelled());
/// t.cancel();
/// assert!(t.is_cancelled());
///
/// let expired = CancelToken::with_deadline(std::time::Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Request cancellation (idempotent, visible to every clone).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token was cancelled or its deadline has passed. A passed
    /// deadline latches the flag, so the answer never flips back.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_token_cancels_only_on_request() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled(), "cancel must be visible through clones");
    }

    #[test]
    fn zero_deadline_is_already_expired_and_latches() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "expiry must latch");
    }

    #[test]
    fn generous_deadline_is_not_expired() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }
}
