//! Tensor-Core symmetric rank-2k update — the paper's stated future work
//! (§7: "we can try to implement the Tensor-Core-based symmetric rank 2k
//! update (syr2k). Indeed, in our current program, this kind of GEMM is
//! regarded as a normal GEMM that does 2x more computations").
//!
//! `C ← alpha·(A·Bᵀ + B·Aᵀ) + beta·C` with fp16-truncated operands,
//! computing only the lower triangle tile-block-wise and mirroring — half
//! the arithmetic of the two full outer products the paper's implementation
//! must issue.

use crate::gemm::truncate_f16;
use tcevd_matrix::blas3;
use tcevd_matrix::{MatMut, MatRef};

/// Block size for the triangular tiling.
const NB: usize = 64;

/// Tensor-Core syr2k: `C ← alpha·(A·Bᵀ + B·Aᵀ) + beta·C`, `A`, `B` n×k.
/// Both triangles of `C` are written (the matrix is symmetric by
/// construction), but only ~half the multiply work is performed.
pub fn tc_syr2k(
    alpha: f32,
    a: MatRef<'_, f32>,
    b: MatRef<'_, f32>,
    beta: f32,
    mut c: MatMut<'_, f32>,
) {
    let n = c.rows();
    assert_eq!(c.cols(), n);
    assert_eq!(a.rows(), n);
    assert_eq!(b.rows(), n);
    assert_eq!(a.cols(), b.cols());

    let ah = truncate_f16(a);
    let bh = truncate_f16(b);

    // Diagonal blocks: symmetric rank-2k on the block (scalar kernel);
    // off-diagonal lower blocks: two GEMM tiles, mirrored to the upper side.
    for j0 in (0..n).step_by(NB) {
        let jb = NB.min(n - j0);
        // diagonal block
        {
            let mut diag = c.view_mut(j0, j0, jb, jb);
            blas3::syr2k_lower(
                alpha,
                ah.view(j0, 0, jb, ah.cols()),
                bh.view(j0, 0, jb, bh.cols()),
                beta,
                diag.as_mut(),
            );
            // mirror within the diagonal block
            for jj in 0..jb {
                for ii in jj + 1..jb {
                    let v = diag.get(ii, jj);
                    diag.set(jj, ii, v);
                }
            }
        }
        // blocks strictly below the diagonal
        for i0 in ((j0 + jb)..n).step_by(NB) {
            let ib = NB.min(n - i0);
            // C[i0.., j0..] ← beta·C + alpha·(A_i·B_jᵀ + B_i·A_jᵀ)
            blas3::gemm(
                alpha,
                ah.view(i0, 0, ib, ah.cols()),
                tcevd_matrix::Op::NoTrans,
                bh.view(j0, 0, jb, bh.cols()),
                tcevd_matrix::Op::Trans,
                beta,
                c.view_mut(i0, j0, ib, jb),
            );
            blas3::gemm(
                alpha,
                bh.view(i0, 0, ib, bh.cols()),
                tcevd_matrix::Op::NoTrans,
                ah.view(j0, 0, jb, ah.cols()),
                tcevd_matrix::Op::Trans,
                1.0,
                c.view_mut(i0, j0, ib, jb),
            );
            // mirror into the upper block
            let block = c.view_mut(i0, j0, ib, jb).as_ref().to_owned();
            let mut upper = c.view_mut(j0, i0, jb, ib);
            for jj in 0..ib {
                for ii in 0..jb {
                    upper.set(ii, jj, block[(jj, ii)]);
                }
            }
        }
    }
}

/// Flops of a native syr2k (half of the two-full-GEMM formulation).
pub fn syr2k_flops(n: usize, k: usize) -> u64 {
    2 * (n as u64) * (n as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::tc_gemm;
    use tcevd_matrix::Mat;
    use tcevd_matrix::Op;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn two_gemm_reference(alpha: f32, a: &Mat<f32>, b: &Mat<f32>, beta: f32, c: &mut Mat<f32>) {
        tc_gemm(
            alpha,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::Trans,
            beta,
            c.as_mut(),
        );
        tc_gemm(
            alpha,
            b.as_ref(),
            Op::NoTrans,
            a.as_ref(),
            Op::Trans,
            1.0,
            c.as_mut(),
        );
    }

    #[test]
    fn matches_two_gemm_formulation() {
        for n in [16usize, 63, 130] {
            let k = 24;
            let a = rand_mat(n, k, n as u64);
            let b = rand_mat(n, k, n as u64 + 1);
            let c0 = rand_mat(n, n, n as u64 + 2);
            // symmetrize c0 for a meaningful beta path
            let c0 = Mat::from_fn(n, n, |i, j| 0.5 * (c0[(i, j)] + c0[(j, i)]));

            let mut c1 = c0.clone();
            tc_syr2k(1.5, a.as_ref(), b.as_ref(), 0.5, c1.as_mut());
            let mut c2 = c0.clone();
            two_gemm_reference(1.5, &a, &b, 0.5, &mut c2);

            let diff = c1.max_abs_diff(&c2);
            // same products, different accumulation order only
            assert!(diff < 1e-4, "n={n}: diff={diff}");
            // exact symmetry by construction
            assert_eq!(c1.max_abs_diff(&c1.transpose()), 0.0, "n={n}");
        }
    }

    #[test]
    fn beta_zero_overwrites() {
        let n = 20;
        let a = rand_mat(n, 8, 1);
        let b = rand_mat(n, 8, 2);
        let mut c = Mat::from_col_major(n, n, vec![f32::NAN; n * n]);
        tc_syr2k(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn flop_count_is_half() {
        assert_eq!(syr2k_flops(100, 10), 2 * 100 * 100 * 10);
        // two full outer products would be 4·n²·k
    }
}
