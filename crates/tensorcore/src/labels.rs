//! The GEMM step-label registry.
//!
//! Every [`GemmContext::gemm`](crate::GemmContext::gemm) /
//! [`GemmContext::syr2k_update`](crate::GemmContext::syr2k_update) call site
//! in non-test pipeline code passes a static label naming the algorithm step
//! that issued the multiply. Those labels are load-bearing: the structured
//! trace partitions flop counters by label, the dry-run shape models in
//! `tcevd-band::trace_model` replay them record-for-record, fault plans
//! (`tcevd-testmat::FaultPlan`) target them, and the runtime sanitizer
//! (feature `sanitize`) attributes numerical violations to them. An
//! unregistered label silently escapes all four, so the set is closed here
//! and machine-checked:
//!
//! * statically — `tcevd-lint` rule **R1** requires every call site to pass
//!   a string literal drawn from [`GEMM_LABELS`], cross-validates the labels
//!   used by `trace_model`'s generators, and flags registry entries no call
//!   site uses;
//! * at runtime — `tcevd-core::fault::apply_plan` tallies
//!   `fault.unregistered_label` when a plan targets a label outside the
//!   registry (a fault that can never fire), and the `tcevd-band` test suite
//!   asserts the trace-model generators emit registered labels only.
//!
//! Adding a GEMM call site therefore means adding its label here (one line)
//! or `cargo run -p tcevd-lint` fails the build.

/// Every registered GEMM/syr2k step label, grouped by the crate that issues
/// it. Keep sorted within each group; `tcevd-lint` R1 enforces that the set
/// exactly matches the labels used by live call sites.
pub const GEMM_LABELS: &[&str] = &[
    // tcevd-band: ZY-representation SBR (sbr_zy.rs)
    "zy_aw",
    "zy_syr2k",
    "zy_waw",
    "zy_z",
    // tcevd-band: WY-representation SBR, the paper's Algorithm 1 (sbr_wy.rs)
    "wy_acc_w",
    "wy_acc_ytw",
    "wy_aw_append",
    "wy_final_u1",
    "wy_final_u2",
    "wy_final_u3",
    "wy_final_waw",
    "wy_final_yt2",
    "wy_inner_ga",
    "wy_inner_wx",
    "wy_inner_x",
    // tcevd-band: detached band reduction, nb decoupled from b (sbr_dbr.rs)
    "dbr_acc_w",
    "dbr_acc_ytw",
    "dbr_aw_append",
    "dbr_final_v",
    "dbr_final_waw",
    "dbr_inner_ga",
    "dbr_inner_wx",
    "dbr_inner_x",
    "dbr_syr2k",
    // tcevd-band: recursive FormW merge + back-transformation (formw.rs)
    "backtransform_wv",
    "backtransform_ytv",
    "formw_w",
    "formw_ytw",
    // tcevd-band: dense Q accumulation (common.rs)
    "q_acc_qw",
    "q_acc_update",
    // tcevd-core: EVD pipeline back-transformation (pipeline.rs)
    "evd_q1x",
    "evd_q2z",
    "evd_sel_q2z",
    // tcevd-core: block Lanczos (lanczos.rs)
    "lanczos_av",
    "lanczos_avk",
    "lanczos_deflate",
    "lanczos_lift",
    "lanczos_proj",
    "lanczos_project",
    // tcevd-core: randomized sketching (randomized.rs)
    "rand_aq",
    "rand_lift",
    "rand_power",
    "rand_project",
    "rand_sketch",
    // tcevd-core: SVD via the symmetric EVD (svd.rs)
    "svd_av",
    "svd_gram",
];

/// Whether `label` is a registered GEMM step label.
pub fn is_registered(label: &str) -> bool {
    GEMM_LABELS.contains(&label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for l in GEMM_LABELS {
            assert!(seen.insert(*l), "duplicate registry entry {l:?}");
        }
    }

    #[test]
    fn membership_queries() {
        assert!(is_registered("evd_q2z"));
        assert!(is_registered("zy_syr2k"));
        assert!(is_registered("wy_inner_x"));
        assert!(!is_registered(""));
        assert!(!is_registered("warp_drive"));
        assert!(!is_registered("EVD_Q2Z")); // case-sensitive
    }
}
