//! # tcevd-tensorcore — software Tensor Core
//!
//! This crate is the hardware-substitution layer of the reproduction (see
//! DESIGN.md §2): an A100 Tensor Core simulated in software, faithful at the
//! level that matters for the paper's claims — *numerics* (operand
//! truncation to fp16/tf32, exact products, fp32 accumulation, optional
//! round-toward-zero) rather than cycle timing (which lives in
//! `tcevd-perfmodel`).
//!
//! Layers, bottom-up:
//! * [`mma`] — one 16×16×16 HMMA instruction on fp16 tiles.
//! * [`gemm`] — full TC-GEMM; a strict tile-walking path validates the fast
//!   truncate-then-SGEMM path used by the numeric experiments.
//! * [`ec`] — error-corrected TC-GEMM (Ootomo–Yokota), recovering ≈FP32
//!   accuracy from three reduced-precision products.
//! * [`engine`] — the [`engine::GemmContext`] every algorithm
//!   crate multiplies through: engine selection (SGEMM / TC / EC-TC) plus
//!   the GEMM shape tracing that feeds the performance model.
//! * [`labels`] — the closed registry of GEMM step labels that tracing,
//!   fault plans, and the sanitizer key on (enforced by `tcevd-lint`).
//! * [`sanitize`] (feature `sanitize`) — runtime numerical sanitizer: scans
//!   GEMM operands/outputs for NaN/±∞ and f16-overflow magnitudes and
//!   attributes the first violation to the step label that produced it.
//! * [`cancel`] — cooperative [`CancelToken`]s the service layer
//!   (`tcevd-serve`) attaches to a context so a job's compute budget is
//!   honored at the pipeline's stage seams.

#![forbid(unsafe_code)]

pub mod cancel;
pub mod ec;
pub mod engine;
pub mod gemm;
pub mod labels;
pub mod mma;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod syr2k;

pub use cancel::CancelToken;
pub use ec::{ec_gemm, EcMode};
pub use engine::tf32_gemm;
pub use engine::{Engine, FaultMode, GemmContext, GemmFault, GemmRecord};
pub use gemm::{tc_gemm, tc_gemm_strict, truncate_f16};
pub use labels::{is_registered, GEMM_LABELS};
pub use mma::AccumMode;
#[cfg(feature = "sanitize")]
pub use sanitize::{SanitizeKind, SanitizeOperand, SanitizeReport};
pub use syr2k::{syr2k_flops, tc_syr2k};
