//! Runtime numerical sanitizer for the mixed-precision GEMM boundary
//! (compiled only with the `sanitize` feature).
//!
//! The pipeline's accuracy claims rest on every value that crosses into an
//! fp16-truncated Tensor-Core GEMM being finite and inside the fp16 range
//! (|x| ≤ 65504); [`round_through_f16`](tcevd_matrix::f16::round_through_f16)
//! deliberately does not report violations — it preserves non-finite inputs
//! and saturates finite overflow — so this scanner is the single detection
//! path. [`GemmContext`](crate::GemmContext) hooks it in at two points:
//!
//! * **output scan** — after every dispatched GEMM/syr2k (any engine), the
//!   output block is scanned; the first violation anywhere in the run is
//!   recorded with the label of the GEMM that *produced* it. Because every
//!   GEMM output is scanned, a corrupted multiply (including every fault the
//!   `tcevd-testmat::FaultPlan` harness injects) is attributed at the
//!   producing call, not wherever the poison happens to surface later.
//!   The finiteness check runs on every engine; the fp16 *magnitude* check
//!   only applies on engines that truncate to fp16 (Tc/EcTc) — on Sgemm or
//!   Tf32 a legitimately huge f32 value is not a violation.
//! * **operand scan** — before fp16 truncation on the Tensor-Core engines,
//!   both operands are scanned. This catches bad values that entered the
//!   GEMM stream from *outside* any GEMM (user input, scalar stages); they
//!   are attributed to the consuming label with
//!   [`SanitizeOperand::A`]/[`B`](SanitizeOperand::B) provenance.
//!
//! Only **one** violation is kept, selected deterministically even when
//! GEMMs run concurrently on the thread pool: along a dependency chain the
//! origin's output scan always happens before any consumer's scan (it runs
//! inside the producing `gemm()` call), so first-wins handles chains, and
//! among *independent* concurrent origins the lowest `(label, col, row,
//! operand)` key wins regardless of thread interleaving. An output
//! violation whose operands already carry a violation is classified as an
//! echo and never displaces a recorded origin. `tcevd-core`'s pipeline
//! turns the report into a typed `EvdError::Sanitizer` at the next stage
//! boundary, tallying the `sanitize.violation` counters as it drains.

use tcevd_matrix::f16::F16_MAX;
use tcevd_matrix::MatRef;

/// What kind of value the sanitizer flagged.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SanitizeKind {
    /// NaN or ±∞.
    NonFinite,
    /// Finite but outside the fp16 range (|x| > 65504): silently corrupts
    /// a truncated GEMM — detectable by magnitude only, never by a NaN scan.
    F16Overflow,
}

impl SanitizeKind {
    /// Short diagnostic name (`"non-finite"` / `"f16-overflow"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SanitizeKind::NonFinite => "non-finite",
            SanitizeKind::F16Overflow => "f16-overflow",
        }
    }
}

/// Where in a GEMM call the flagged value was seen.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SanitizeOperand {
    /// In the output block `C` — the labeled GEMM *produced* the value.
    Output,
    /// In operand `A` before fp16 truncation — the value reached the
    /// labeled GEMM from outside the GEMM stream.
    A,
    /// In operand `B` before fp16 truncation.
    B,
}

impl SanitizeOperand {
    /// Short diagnostic name (`"output"` / `"operand A"` / `"operand B"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SanitizeOperand::Output => "output",
            SanitizeOperand::A => "operand A",
            SanitizeOperand::B => "operand B",
        }
    }
}

/// The first numerical violation observed in a run, with full provenance.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SanitizeReport {
    /// Step label of the GEMM the violation is attributed to.
    pub label: &'static str,
    /// Violation class.
    pub kind: SanitizeKind,
    /// Which block of that GEMM held the value.
    pub operand: SanitizeOperand,
    /// The offending value itself.
    pub value: f32,
    /// Row of the first offending entry (column-major scan order).
    pub row: usize,
    /// Column of the first offending entry.
    pub col: usize,
}

impl std::fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} value {} at ({}, {}) in {} of GEMM {:?}",
            self.kind.as_str(),
            self.value,
            self.row,
            self.col,
            self.operand.as_str(),
            self.label,
        )
    }
}

/// Classify one value. NaN/±∞ is always a violation; the fp16 magnitude
/// check applies only when `f16_range` is set — i.e. when the scanned block
/// feeds (or was produced by) an engine that truncates to fp16. On
/// non-truncating engines legitimately huge f32 values are fine.
#[inline]
fn classify(v: f32, f16_range: bool) -> Option<SanitizeKind> {
    if !v.is_finite() {
        Some(SanitizeKind::NonFinite)
    } else if f16_range && v.abs() > F16_MAX {
        Some(SanitizeKind::F16Overflow)
    } else {
        None
    }
}

/// Scan a matrix block column-major; returns a report for the first
/// violating entry, or `None` if the block is clean. `f16_range` enables
/// the |x| > 65504 magnitude check on top of the universal finiteness
/// check — pass it only for blocks crossing an fp16-truncating engine
/// (Tc/EcTc); see [`classify`].
pub fn scan(
    label: &'static str,
    operand: SanitizeOperand,
    m: MatRef<'_, f32>,
    f16_range: bool,
) -> Option<SanitizeReport> {
    for j in 0..m.cols() {
        for (i, &v) in m.col(j).iter().enumerate() {
            if let Some(kind) = classify(v, f16_range) {
                return Some(SanitizeReport {
                    label,
                    kind,
                    operand,
                    value: v,
                    row: i,
                    col: j,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcevd_matrix::Mat;

    #[test]
    fn clean_block_passes() {
        let a = Mat::<f32>::from_fn(5, 4, |i, j| (i as f32 - j as f32) * 100.0);
        assert_eq!(scan("t", SanitizeOperand::Output, a.as_ref(), true), None);
        let edge = Mat::<f32>::from_fn(2, 2, |_, _| 65504.0);
        assert_eq!(scan("t", SanitizeOperand::A, edge.as_ref(), true), None);
    }

    #[test]
    fn first_violation_wins_in_column_major_order() {
        let mut a = Mat::<f32>::zeros(4, 4);
        a[(3, 1)] = f32::NAN; // earlier in column-major order
        a[(0, 2)] = 7.0e4;
        let r = scan("lbl", SanitizeOperand::Output, a.as_ref(), true).expect("violation");
        assert_eq!((r.row, r.col), (3, 1));
        assert_eq!(r.kind, SanitizeKind::NonFinite);
        assert_eq!(r.label, "lbl");
        assert_eq!(r.operand, SanitizeOperand::Output);
    }

    #[test]
    fn overflow_is_distinguished_from_non_finite() {
        let mut a = Mat::<f32>::zeros(3, 3);
        a[(1, 1)] = -7.0e4;
        let r = scan("lbl", SanitizeOperand::B, a.as_ref(), true).expect("violation");
        assert_eq!(r.kind, SanitizeKind::F16Overflow);
        assert_eq!(r.value, -7.0e4);
        assert_eq!(r.kind.as_str(), "f16-overflow");
        assert_eq!(r.operand.as_str(), "operand B");

        let mut b = Mat::<f32>::zeros(2, 2);
        b[(0, 0)] = f32::NEG_INFINITY;
        let r = scan("lbl", SanitizeOperand::A, b.as_ref(), true).expect("violation");
        assert_eq!(r.kind, SanitizeKind::NonFinite);
    }

    #[test]
    fn range_check_is_gated_on_truncating_engines() {
        // legitimately huge f32 values are clean when the consuming engine
        // never truncates to fp16…
        let mut a = Mat::<f32>::zeros(3, 3);
        a[(1, 1)] = 7.0e4;
        a[(2, 2)] = -1.0e30;
        assert_eq!(
            scan("lbl", SanitizeOperand::Output, a.as_ref(), false),
            None
        );
        // …while NaN/∞ is a violation on every engine
        a[(0, 1)] = f32::NAN;
        let r = scan("lbl", SanitizeOperand::Output, a.as_ref(), false).expect("violation");
        assert_eq!(r.kind, SanitizeKind::NonFinite);
        assert_eq!((r.row, r.col), (0, 1));
    }
}
