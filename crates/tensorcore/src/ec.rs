//! Error-corrected Tensor-Core GEMM (EC-TCGEMM).
//!
//! Implements the Markidis-style precision-recovery scheme refined by
//! Ootomo & Yokota (the paper's §5.3): split each fp32 operand into a
//! truncated fp16 head and a *scaled* fp16 residual,
//!
//! ```text
//! A = Ã + ΔA/s,   Ã = f16(A),  ΔA = f16(s·(A − Ã)),  s = 2¹¹
//! ```
//!
//! and recover `A·B ≈ Ã·B̃ + (Ã·ΔB + ΔA·B̃)/s`, dropping the O(u²) term
//! `ΔA·ΔB/s²`. The residual scaling by `s = 2¹¹` (the fp16 mantissa width)
//! keeps residuals in the fp16 normal range — without it, underflow in the
//! correction terms destroys the recovered accuracy, which is exactly the
//! refinement Ootomo & Yokota made to Markidis' method.
//!
//! A TF32 mode is also provided (3 tf32 products, no scaling needed since
//! tf32 inherits the f32 exponent range) matching the paper's A100 setup.

use crate::gemm::truncate_f16;
use tcevd_matrix::blas3;
use tcevd_matrix::f16::round_to_tf32;
use tcevd_matrix::{Mat, MatMut, MatRef, Op};

/// Residual scale: 2¹¹, one fp16 mantissa width.
pub const EC_SCALE: f32 = 2048.0;

/// Which reduced precision the EC scheme splits into.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum EcMode {
    /// fp16 head + 2¹¹-scaled fp16 residual (3 fp16 TC-GEMMs).
    #[default]
    F16Scaled,
    /// tf32 head + tf32 residual (3 tf32 TC-GEMMs, full f32 exponent range).
    Tf32,
}

/// Split `a` into `(head, residual)` such that
/// `a ≈ head + residual/EC_SCALE` with both parts exactly representable in
/// the reduced precision.
pub fn split_f16(a: MatRef<'_, f32>) -> (Mat<f32>, Mat<f32>) {
    let head = truncate_f16(a);
    let mut resid = Mat::zeros(a.rows(), a.cols());
    for j in 0..a.cols() {
        let src = a.col(j);
        let h = head.col(j);
        let r = resid.col_mut(j);
        for i in 0..src.len() {
            r[i] = tcevd_matrix::f16::round_through_f16((src[i] - h[i]) * EC_SCALE);
        }
    }
    (head, resid)
}

/// tf32 split: `a = head + resid` (no scaling required).
pub fn split_tf32(a: MatRef<'_, f32>) -> (Mat<f32>, Mat<f32>) {
    let mut head = Mat::zeros(a.rows(), a.cols());
    let mut resid = Mat::zeros(a.rows(), a.cols());
    for j in 0..a.cols() {
        let src = a.col(j);
        let h = head.col_mut(j);
        for i in 0..src.len() {
            h[i] = round_to_tf32(src[i]);
        }
        let h = head.col(j);
        let r = resid.col_mut(j);
        for i in 0..src.len() {
            r[i] = round_to_tf32(src[i] - h[i]);
        }
    }
    (head, resid)
}

/// Error-corrected Tensor-Core GEMM:
/// `C ← alpha·A·B + beta·C` at ≈FP32 accuracy using three reduced-precision
/// GEMMs.
#[allow(clippy::too_many_arguments)] // BLAS gemm signature + mode
pub fn ec_gemm(
    alpha: f32,
    a: MatRef<'_, f32>,
    op_a: Op,
    b: MatRef<'_, f32>,
    op_b: Op,
    beta: f32,
    mut c: MatMut<'_, f32>,
    mode: EcMode,
) {
    match mode {
        EcMode::F16Scaled => {
            let (ah, ar) = split_f16(a);
            let (bh, br) = split_f16(b);
            // C ← beta·C + alpha·Ã·B̃
            blas3::gemm(
                alpha,
                ah.as_ref(),
                op_a,
                bh.as_ref(),
                op_b,
                beta,
                c.as_mut(),
            );
            // C += (alpha/s)·(Ã·ΔB + ΔA·B̃)
            let s = alpha / EC_SCALE;
            blas3::gemm(s, ah.as_ref(), op_a, br.as_ref(), op_b, 1.0, c.as_mut());
            blas3::gemm(s, ar.as_ref(), op_a, bh.as_ref(), op_b, 1.0, c.as_mut());
        }
        EcMode::Tf32 => {
            let (ah, ar) = split_tf32(a);
            let (bh, br) = split_tf32(b);
            blas3::gemm(
                alpha,
                ah.as_ref(),
                op_a,
                bh.as_ref(),
                op_b,
                beta,
                c.as_mut(),
            );
            blas3::gemm(alpha, ah.as_ref(), op_a, br.as_ref(), op_b, 1.0, c.as_mut());
            blas3::gemm(alpha, ar.as_ref(), op_a, bh.as_ref(), op_b, 1.0, c.as_mut());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::tc_gemm;

    fn pseudo_rand_mat(m: usize, n: usize, seed: u64, scale: f32) -> Mat<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0) * scale
        })
    }

    fn exact_gemm_f64(a: &Mat<f32>, b: &Mat<f32>) -> Mat<f64> {
        let a64: Mat<f64> = a.cast();
        let b64: Mat<f64> = b.cast();
        blas3::matmul(a64.as_ref(), Op::NoTrans, b64.as_ref(), Op::NoTrans)
    }

    #[test]
    fn split_reconstructs_to_f16_squared_accuracy() {
        let a = pseudo_rand_mat(31, 17, 1, 1.0);
        let (h, r) = split_f16(a.as_ref());
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                let rec = h[(i, j)] + r[(i, j)] / EC_SCALE;
                let err = (rec - a[(i, j)]).abs();
                // residual itself is f16-rounded → error ~ u16² ≈ 2.4e-7
                assert!(err <= 4.0e-7, "err={err}");
            }
        }
    }

    #[test]
    fn ec_gemm_recovers_fp32_accuracy() {
        let (m, k, n) = (48, 48, 48);
        let a = pseudo_rand_mat(m, k, 2, 1.0);
        let b = pseudo_rand_mat(k, n, 3, 1.0);
        let exact = exact_gemm_f64(&a, &b);

        let mut c_tc = Mat::zeros(m, n);
        tc_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c_tc.as_mut(),
        );
        let mut c_ec = Mat::zeros(m, n);
        ec_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c_ec.as_mut(),
            EcMode::F16Scaled,
        );

        let err = |c: &Mat<f32>| -> f64 {
            let mut e = 0.0f64;
            for j in 0..n {
                for i in 0..m {
                    e = e.max((c[(i, j)] as f64 - exact[(i, j)]).abs());
                }
            }
            e
        };
        let e_tc = err(&c_tc);
        let e_ec = err(&c_ec);
        // EC must beat plain TC by orders of magnitude and land near f32 level.
        assert!(e_ec < e_tc / 50.0, "e_ec={e_ec} e_tc={e_tc}");
        // theory: ~u16²·k ≈ 1.1e-5 at k = 48
        assert!(e_ec < 3e-5, "e_ec={e_ec}");
    }

    #[test]
    fn ec_tf32_also_recovers() {
        let (m, k, n) = (32, 40, 24);
        let a = pseudo_rand_mat(m, k, 5, 1.0);
        let b = pseudo_rand_mat(k, n, 6, 1.0);
        let exact = exact_gemm_f64(&a, &b);
        let mut c = Mat::zeros(m, n);
        ec_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c.as_mut(),
            EcMode::Tf32,
        );
        let mut e = 0.0f64;
        for j in 0..n {
            for i in 0..m {
                e = e.max((c[(i, j)] as f64 - exact[(i, j)]).abs());
            }
        }
        assert!(e < 1e-5, "e={e}");
    }

    #[test]
    fn ec_handles_wide_dynamic_range() {
        // Without the 2^11 residual scaling, entries ~1e-3 would lose their
        // correction to fp16 underflow. Verify accuracy holds across scales.
        let (m, k, n) = (24, 24, 24);
        let a = pseudo_rand_mat(m, k, 7, 1e-3);
        let b = pseudo_rand_mat(k, n, 8, 1e3);
        let exact = exact_gemm_f64(&a, &b);
        let mut c = Mat::zeros(m, n);
        ec_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c.as_mut(),
            EcMode::F16Scaled,
        );
        let mut rel = 0.0f64;
        let scale: f64 = tcevd_matrix::norms::max_abs(exact.as_ref());
        for j in 0..n {
            for i in 0..m {
                rel = rel.max((c[(i, j)] as f64 - exact[(i, j)]).abs() / scale);
            }
        }
        assert!(rel < 1e-5, "rel={rel}");
    }

    #[test]
    fn ec_respects_alpha_beta() {
        let (m, k, n) = (8, 8, 8);
        let a = pseudo_rand_mat(m, k, 9, 1.0);
        let b = pseudo_rand_mat(k, n, 10, 1.0);
        let c0 = pseudo_rand_mat(m, n, 11, 1.0);
        let mut c = c0.clone();
        ec_gemm(
            2.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.5,
            c.as_mut(),
            EcMode::F16Scaled,
        );
        let ab = blas3::matmul(a.as_ref(), Op::NoTrans, b.as_ref(), Op::NoTrans);
        for j in 0..n {
            for i in 0..m {
                let want = 2.0 * ab[(i, j)] + 0.5 * c0[(i, j)];
                assert!((c[(i, j)] - want).abs() < 1e-3);
            }
        }
    }
}
