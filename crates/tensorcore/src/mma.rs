//! Tile-level matrix-multiply-accumulate simulator.
//!
//! Models one Tensor Core HMMA operation: `D = A·B + C` where `A`, `B` are
//! 16×16 fp16 tiles and `C`, `D` accumulate in fp32 — the `wmma::mma_sync`
//! fragment shape `m16n16k16`.
//!
//! Two accumulation modes are provided:
//! * [`AccumMode::F32Rn`] — every partial sum rounded to nearest (what the
//!   A100 does for the fp32 accumulator path, and what a plain `f32` add
//!   gives us for free);
//! * [`AccumMode::F32Rz`] — round-toward-zero accumulation, the behaviour
//!   Ootomo & Yokota identified inside V100/A100 tensor cores for the
//!   *intra-instruction* adds, emulated here by computing each add exactly
//!   in `f64` and truncating the result toward zero to `f32`.

use tcevd_matrix::f16::F16;

/// Tile dimension of the simulated MMA unit (m = n = k = 16).
pub const TILE: usize = 16;

/// Rounding behaviour of the fp32 accumulator inside the MMA unit.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AccumMode {
    /// Round-to-nearest-even on every accumulation step.
    #[default]
    F32Rn,
    /// Round-toward-zero on every accumulation step (hardware-faithful for
    /// the intra-MMA adds; slightly worse error constant).
    F32Rz,
}

/// A 16×16 fp16 operand tile, column-major.
#[derive(Clone)]
pub struct TileF16(pub [F16; TILE * TILE]);

impl TileF16 {
    pub fn zero() -> Self {
        TileF16([F16::ZERO; TILE * TILE])
    }

    /// Load from an f32 buffer (column-major, leading dimension `ld`),
    /// rounding each element to fp16. Out-of-range rows/cols are zero-padded.
    pub fn load(src: &[f32], rows: usize, cols: usize, ld: usize) -> Self {
        let mut t = Self::zero();
        for j in 0..cols.min(TILE) {
            for i in 0..rows.min(TILE) {
                t.0[i + j * TILE] = F16::from_f32(src[i + j * ld]);
            }
        }
        t
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> F16 {
        self.0[i + j * TILE]
    }
}

/// A 16×16 fp32 accumulator tile, column-major.
#[derive(Clone)]
pub struct TileF32(pub [f32; TILE * TILE]);

impl TileF32 {
    pub fn zero() -> Self {
        TileF32([0.0; TILE * TILE])
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.0[i + j * TILE]
    }

    /// Store the top-left `rows`×`cols` corner into a column-major buffer.
    pub fn store(&self, dst: &mut [f32], rows: usize, cols: usize, ld: usize) {
        for j in 0..cols.min(TILE) {
            for i in 0..rows.min(TILE) {
                dst[i + j * ld] = self.0[i + j * TILE];
            }
        }
    }
}

#[inline]
fn add_rz(acc: f32, x: f32) -> f32 {
    // Exact sum in f64, then truncate toward zero at f32 precision.
    let exact = acc as f64 + x as f64;
    let rn = exact as f32; // RNE
    if (rn as f64).abs() > exact.abs() {
        // RNE rounded away from zero: step one ulp toward zero.
        f32::from_bits(rn.to_bits() - 1)
    } else {
        rn
    }
}

/// One simulated HMMA: `c ← a·b + c`.
///
/// Products `a_il · b_lj` are formed exactly (fp16×fp16 is exact in fp32);
/// the 16-term accumulation happens in fp32 under `mode`.
pub fn mma(a: &TileF16, b: &TileF16, c: &mut TileF32, mode: AccumMode) {
    for j in 0..TILE {
        for i in 0..TILE {
            let mut acc = c.0[i + j * TILE];
            match mode {
                AccumMode::F32Rn => {
                    for l in 0..TILE {
                        acc += a.get(i, l).to_f32() * b.get(l, j).to_f32();
                    }
                }
                AccumMode::F32Rz => {
                    for l in 0..TILE {
                        let p = a.get(i, l).to_f32() * b.get(l, j).to_f32();
                        acc = add_rz(acc, p);
                    }
                }
            }
            c.0[i + j * TILE] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_from_fn(f: impl Fn(usize, usize) -> f32) -> TileF16 {
        let mut t = TileF16::zero();
        for j in 0..TILE {
            for i in 0..TILE {
                t.0[i + j * TILE] = F16::from_f32(f(i, j));
            }
        }
        t
    }

    #[test]
    fn identity_times_identity() {
        let eye = tile_from_fn(|i, j| if i == j { 1.0 } else { 0.0 });
        let mut c = TileF32::zero();
        mma(&eye, &eye, &mut c, AccumMode::F32Rn);
        for j in 0..TILE {
            for i in 0..TILE {
                assert_eq!(c.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn accumulates_onto_c() {
        let eye = tile_from_fn(|i, j| if i == j { 2.0 } else { 0.0 });
        let b = tile_from_fn(|i, j| (i + j) as f32 / 8.0);
        let mut c = TileF32::zero();
        mma(&eye, &b, &mut c, AccumMode::F32Rn);
        let first = c.clone();
        mma(&eye, &b, &mut c, AccumMode::F32Rn);
        for idx in 0..TILE * TILE {
            assert_eq!(c.0[idx], 2.0 * first.0[idx]);
        }
    }

    #[test]
    fn matches_exact_for_small_integers() {
        // Integers ≤ 2048 are exact in fp16; products/sums exact in fp32.
        let a = tile_from_fn(|i, j| ((i * 3 + j) % 7) as f32);
        let b = tile_from_fn(|i, j| ((i + 2 * j) % 5) as f32);
        let mut c = TileF32::zero();
        mma(&a, &b, &mut c, AccumMode::F32Rn);
        for j in 0..TILE {
            for i in 0..TILE {
                let mut want = 0.0f64;
                for l in 0..TILE {
                    want += a.get(i, l).to_f32() as f64 * b.get(l, j).to_f32() as f64;
                }
                assert_eq!(c.get(i, j) as f64, want);
            }
        }
    }

    #[test]
    fn rz_truncates_toward_zero() {
        // 1 + 2^-25 in f32: RNE gives 1.0, RZ also 1.0 (both truncate here);
        // use a case where RNE rounds away: acc = 1, x = 3*2^-25
        // exact = 1 + 3*2^-25; nearest f32 is 1 + 2^-23 (rounds up), RZ gives 1 + 0 = 1.0?
        // f32 spacing at 1.0 is 2^-23; exact is between 1 and 1+2^-23, closer to 1 (3/4 of the way? 3*2^-25 = 0.375*2^-23) → RNE gives 1.0 too.
        // Use x = 0.75 * 2^-23: exact = 1 + 0.75·2^-23 → RNE rounds to 1+2^-23, RZ to 1.
        let x = 0.75 * 2f32.powi(-23);
        let rn = 1.0f32 + x;
        assert_eq!(rn, 1.0 + 2f32.powi(-23));
        assert_eq!(add_rz(1.0, x), 1.0);
        // negative side symmetric
        assert_eq!(add_rz(-1.0, -x), -1.0);
        // exact results unchanged
        assert_eq!(add_rz(1.0, 1.0), 2.0);
    }

    #[test]
    fn load_store_round_trip_with_padding() {
        let rows = 10;
        let cols = 12;
        let ld = 11;
        let src: Vec<f32> = (0..ld * cols).map(|x| x as f32 * 0.25).collect();
        let t = TileF16::load(&src, rows, cols, ld);
        // padded region is zero
        assert_eq!(t.get(15, 15).to_f32(), 0.0);
        assert_eq!(t.get(10, 0).to_f32(), 0.0);
        // values survive (0.25 multiples < 2048 are exact in f16)
        assert_eq!(t.get(3, 2).to_f32(), src[3 + 2 * ld]);

        let mut c = TileF32::zero();
        c.0[0] = 7.0;
        c.0[1 + TILE] = -3.0;
        let mut out = vec![0.0f32; 4];
        c.store(&mut out, 2, 2, 2);
        assert_eq!(out, vec![7.0, 0.0, 0.0, -3.0]);
    }
}
