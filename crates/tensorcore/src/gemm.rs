//! Tensor-Core GEMM simulation.
//!
//! `tc_gemm` reproduces what `cublasGemmEx(..., CUDA_R_16F, ..., CUDA_R_32F)`
//! computes: operands truncated to fp16 (RNE), products exact, accumulation
//! in fp32.
//!
//! Two execution paths compute the same quantity:
//! * **fast** — run the packed f32 GEMM from `tcevd-matrix` with fp16
//!   rounding fused into operand packing (`blas3::gemm_with`): each element
//!   passes through [`round_through_f16`] exactly once, as it is copied
//!   into the packed panel, with no truncated operand copies materialized
//!   up front. Since every fp16 product is exact in fp32, this differs from
//!   the tile path only in f32 summation order. This is what the numeric
//!   experiments use.
//! * **strict** — walk 16×16×16 tiles through the [`crate::mma::mma`]
//!   simulator, modelling the per-instruction accumulation (including the
//!   optional round-toward-zero mode). Used for validating the fast path and
//!   for error-behaviour studies.

use crate::mma::{mma, AccumMode, TileF16, TileF32, TILE};
use tcevd_matrix::blas3;
use tcevd_matrix::f16::round_through_f16;
use tcevd_matrix::{Mat, MatMut, MatRef, Op};

/// Truncate every entry of a matrix through fp16 (returns a new matrix whose
/// entries are exactly representable in fp16).
///
/// Inherits [`round_through_f16`]'s edge-value contract: NaN and ±∞ pass
/// through bit-exactly and finite values beyond the fp16 range saturate to
/// ±65504 — truncation never mints fresh infinities, so the `sanitize`
/// feature's pre-truncation operand scan is the single place such values
/// are detected and reported.
pub fn truncate_f16(a: MatRef<'_, f32>) -> Mat<f32> {
    let mut out = Mat::zeros(a.rows(), a.cols());
    for j in 0..a.cols() {
        let src = a.col(j);
        let dst = out.col_mut(j);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = round_through_f16(s);
        }
    }
    out
}

/// Tensor-Core GEMM (fast path):
/// `C ← alpha·f16(op(A))·f16(op(B)) + beta·C` with fp32 accumulation.
///
/// The fp16 rounding is fused into the packed GEMM's operand packing: each
/// operand element is rounded once while being copied into its packed
/// panel, so no truncated copies of `A`/`B` are ever materialized.
pub fn tc_gemm(
    alpha: f32,
    a: MatRef<'_, f32>,
    op_a: Op,
    b: MatRef<'_, f32>,
    op_b: Op,
    beta: f32,
    c: MatMut<'_, f32>,
) {
    blas3::gemm_with(alpha, a, op_a, b, op_b, beta, c, &round_through_f16);
}

/// Tensor-Core GEMM (strict tiled path): identical quantity computed tile by
/// tile through the MMA simulator. `op` handling is done by materializing
/// transposed copies (the GPU's wmma loader does the equivalent re-layout).
#[allow(clippy::too_many_arguments)] // BLAS gemm signature + mode
pub fn tc_gemm_strict(
    alpha: f32,
    a: MatRef<'_, f32>,
    op_a: Op,
    b: MatRef<'_, f32>,
    op_b: Op,
    beta: f32,
    mut c: MatMut<'_, f32>,
    mode: AccumMode,
) {
    let a_eff = match op_a {
        Op::NoTrans => a.to_owned(),
        Op::Trans => a.to_owned().transpose(),
    };
    let b_eff = match op_b {
        Op::NoTrans => b.to_owned(),
        Op::Trans => b.to_owned().transpose(),
    };
    let (m, k) = (a_eff.rows(), a_eff.cols());
    let n = b_eff.cols();
    assert_eq!(b_eff.rows(), k, "inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n));

    for j0 in (0..n).step_by(TILE) {
        let nj = TILE.min(n - j0);
        for i0 in (0..m).step_by(TILE) {
            let ni = TILE.min(m - i0);
            let mut acc = TileF32::zero();
            for l0 in (0..k).step_by(TILE) {
                let nl = TILE.min(k - l0);
                let at = TileF16::load(&a_eff.as_slice()[i0 + l0 * m..], ni, nl, m);
                let bt = TileF16::load(&b_eff.as_slice()[l0 + j0 * k..], nl, nj, k);
                mma(&at, &bt, &mut acc, mode);
            }
            // C tile ← alpha*acc + beta*C tile
            for j in 0..nj {
                for i in 0..ni {
                    let old = c.get(i0 + i, j0 + j);
                    c.set(i0 + i, j0 + j, alpha * acc.get(i, j) + beta * old);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcevd_matrix::f16::F16_UNIT_ROUNDOFF;

    fn pseudo_rand_mat(m: usize, n: usize, seed: u64, scale: f32) -> Mat<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(m, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0) * scale
        })
    }

    #[test]
    fn truncate_idempotent() {
        let a = pseudo_rand_mat(13, 7, 1, 3.0);
        let t1 = truncate_f16(a.as_ref());
        let t2 = truncate_f16(t1.as_ref());
        assert_eq!(t1.max_abs_diff(&t2), 0.0);
    }

    #[test]
    fn truncate_preserves_non_finite_and_saturates_overflow() {
        let a = Mat::<f32>::from_col_major(
            2,
            3,
            vec![
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                7.0e4,
                -1e30,
                65504.0,
            ],
        );
        let t = truncate_f16(a.as_ref());
        assert!(t[(0, 0)].is_nan());
        assert_eq!(t[(1, 0)], f32::INFINITY);
        assert_eq!(t[(0, 1)], f32::NEG_INFINITY);
        // finite overflow saturates rather than minting a fresh infinity
        assert_eq!(t[(1, 1)], 65504.0);
        assert_eq!(t[(0, 2)], -65504.0);
        assert_eq!(t[(1, 2)], 65504.0);
    }

    #[test]
    fn tc_gemm_exact_on_f16_integers() {
        // Small integers are exact in fp16, so TC-GEMM must be exact.
        let a = Mat::<f32>::from_fn(20, 18, |i, j| ((i * 7 + j) % 9) as f32 - 4.0);
        let b = Mat::<f32>::from_fn(18, 17, |i, j| ((i + 3 * j) % 5) as f32);
        let mut c = Mat::zeros(20, 17);
        tc_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c.as_mut(),
        );
        let want = blas3::matmul(a.as_ref(), Op::NoTrans, b.as_ref(), Op::NoTrans);
        assert_eq!(c.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn fused_truncation_matches_materialized_truncation() {
        // fusing f16 rounding into packing must be bit-identical to
        // truncating whole operand copies first and multiplying those
        let (m, k, n) = (23, 31, 19);
        let a = pseudo_rand_mat(m, k, 11, 10.0);
        let b = pseudo_rand_mat(n, k, 12, 10.0);
        let mut c_fused = pseudo_rand_mat(m, n, 13, 1.0);
        let mut c_mat = c_fused.clone();
        tc_gemm(
            1.5,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::Trans,
            0.5,
            c_fused.as_mut(),
        );
        let ah = truncate_f16(a.as_ref());
        let bh = truncate_f16(b.as_ref());
        blas3::gemm(
            1.5,
            ah.as_ref(),
            Op::NoTrans,
            bh.as_ref(),
            Op::Trans,
            0.5,
            c_mat.as_mut(),
        );
        assert_eq!(c_fused.max_abs_diff(&c_mat), 0.0);
    }

    #[test]
    fn fast_and_strict_paths_agree() {
        let (m, k, n) = (37, 45, 29);
        let a = pseudo_rand_mat(m, k, 2, 1.0);
        let b = pseudo_rand_mat(k, n, 3, 1.0);
        let mut c_fast = Mat::zeros(m, n);
        let mut c_strict = Mat::zeros(m, n);
        tc_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c_fast.as_mut(),
        );
        tc_gemm_strict(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c_strict.as_mut(),
            AccumMode::F32Rn,
        );
        // Same products, different f32 summation order: tiny difference only.
        let diff = c_fast.max_abs_diff(&c_strict);
        let scale = tcevd_matrix::norms::max_abs(c_fast.as_ref());
        assert!(
            diff <= 4.0 * f32::EPSILON * scale * (k as f32).sqrt(),
            "diff={diff}"
        );
    }

    #[test]
    fn strict_path_handles_ops_and_ragged_edges() {
        let (m, k, n) = (19, 23, 21); // deliberately not multiples of 16
        let a = pseudo_rand_mat(k, m, 4, 1.0); // will be transposed
        let b = pseudo_rand_mat(n, k, 5, 1.0);
        let mut c = pseudo_rand_mat(m, n, 6, 1.0);
        let mut c_ref = c.clone();
        tc_gemm_strict(
            2.0,
            a.as_ref(),
            Op::Trans,
            b.as_ref(),
            Op::Trans,
            -1.0,
            c.as_mut(),
            AccumMode::F32Rn,
        );
        tc_gemm(
            2.0,
            a.as_ref(),
            Op::Trans,
            b.as_ref(),
            Op::Trans,
            -1.0,
            c_ref.as_mut(),
        );
        let diff = c.max_abs_diff(&c_ref);
        assert!(diff <= 1e-4, "diff={diff}");
    }

    #[test]
    fn tc_gemm_error_is_f16_level_not_f32() {
        // With generic inputs the error must be ~f16 unit roundoff,
        // clearly worse than f32 — this is the accuracy loss EC-GEMM fixes.
        let (m, k, n) = (40, 40, 40);
        let a = pseudo_rand_mat(m, k, 7, 1.0);
        let b = pseudo_rand_mat(k, n, 8, 1.0);
        let mut c = Mat::zeros(m, n);
        tc_gemm(
            1.0,
            a.as_ref(),
            Op::NoTrans,
            b.as_ref(),
            Op::NoTrans,
            0.0,
            c.as_mut(),
        );
        let exact = blas3::matmul(a.as_ref(), Op::NoTrans, b.as_ref(), Op::NoTrans);
        let err = c.max_abs_diff(&exact);
        // error present (>> f32 eps) but bounded by ~2·u16·k·max|a||b|
        assert!(err > 1e-6, "err={err} suspiciously small");
        assert!(err < 2.0 * F16_UNIT_ROUNDOFF * k as f32, "err={err}");
    }

    #[test]
    fn rz_mode_biases_toward_zero() {
        // Accumulating many positive products under RZ must give a result
        // ≤ the RN result (truncation never rounds up for positive sums).
        let (m, k, n) = (16, 64, 16);
        let a = pseudo_rand_mat(m, k, 9, 1.0);
        let a = truncate_f16(a.as_ref());
        let a_abs = Mat::from_fn(m, k, |i, j| a[(i, j)].abs());
        let b_abs = Mat::from_fn(k, n, |i, j| (0.1 + ((i + j) % 3) as f32) / 3.0);
        let mut c_rn = Mat::zeros(m, n);
        let mut c_rz = Mat::zeros(m, n);
        tc_gemm_strict(
            1.0,
            a_abs.as_ref(),
            Op::NoTrans,
            b_abs.as_ref(),
            Op::NoTrans,
            0.0,
            c_rn.as_mut(),
            AccumMode::F32Rn,
        );
        tc_gemm_strict(
            1.0,
            a_abs.as_ref(),
            Op::NoTrans,
            b_abs.as_ref(),
            Op::NoTrans,
            0.0,
            c_rz.as_mut(),
            AccumMode::F32Rz,
        );
        for j in 0..n {
            for i in 0..m {
                assert!(c_rz[(i, j)] <= c_rn[(i, j)] + f32::EPSILON);
            }
        }
    }
}
