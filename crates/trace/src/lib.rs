#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]
//! # tcevd-trace — pipeline-wide structured observability
//!
//! Zero-overhead-when-disabled instrumentation for the EVD pipeline:
//!
//! * **hierarchical spans** — RAII guards emitting begin/end events with a
//!   per-thread timeline, so `sym_eig` → `sbr_wy` → per-panel children
//!   reconstruct as a tree (`span!(sink, "sbr_wy", n, b, nb)`);
//! * **typed counters and histograms** — monotonic `u64` counters (GEMM
//!   flops by shape class, panel count, bulge sweeps, D&C merges, bytes
//!   moved) and power-of-two-bucketed histograms;
//! * **three exporters** — a human-readable stage report
//!   ([`TraceSink::stage_report`]), Chrome `trace_event` JSON loadable in
//!   Perfetto / `chrome://tracing` ([`TraceSink::chrome_trace_json`]), and
//!   Prometheus text exposition ([`TraceSink::prometheus_text`]).
//!
//! The handle is a [`TraceSink`]: cheap to clone, thread-safe, and — when
//! constructed with [`TraceSink::disabled`] (the `Default`) — a bare
//! `None` that allocates nothing and takes no locks on any hot path.
//! Every recording method first checks the inner `Option`; argument
//! formatting is deferred through closures so a disabled sink never even
//! builds the strings.
//!
//! ```
//! use tcevd_trace::{span, TraceSink};
//!
//! let sink = TraceSink::enabled();
//! {
//!     let _root = span!(sink, "sym_eig", n = 512);
//!     let _child = span!(sink, "sbr_wy");
//!     sink.add("panel_count", 4);
//!     sink.record("panel_rows", 480);
//! }
//! assert_eq!(sink.counter("panel_count"), 4);
//! let json = sink.chrome_trace_json();
//! assert!(json.contains("\"ph\":\"B\""));
//! ```

pub mod json;

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Begin/end marker of a span event (Chrome trace_event `ph` field).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    Begin,
    End,
}

/// One raw span event on a thread timeline.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: &'static str,
    /// `key=value` pairs, space-separated (only on `Begin` events).
    pub args: Option<String>,
    pub tid: u32,
    /// Microseconds since the sink was created.
    pub ts_us: f64,
    pub ph: Phase,
}

/// Power-of-two-bucketed histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts samples whose bit length is `i`
    /// (i.e. values in `[2^(i-1), 2^i)`; bucket 0 is the value 0).
    pub buckets: [u64; 33],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 33],
        }
    }
}

impl Histogram {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = (64 - v.leading_zeros() as usize).min(32);
        self.buckets[idx] += 1;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Poison-recovering mutex acquisition. Instrumented code runs on worker
/// threads that may panic mid-job (the service layer contains panics per
/// job); trace state is a monotonic append-only log, so recovering the
/// inner data from a poisoned mutex is always sound — aborting the whole
/// process over telemetry never is.
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Inner {
    t0: Instant,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
    tids: Mutex<(HashMap<ThreadId, u32>, u32)>,
}

impl Inner {
    fn tid(&self) -> u32 {
        let id = std::thread::current().id();
        let mut g = lock_or_recover(&self.tids);
        if let Some(&t) = g.0.get(&id) {
            return t;
        }
        let t = g.1;
        g.1 += 1;
        g.0.insert(id, t);
        t
    }

    fn ts_us(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e6
    }

    fn push(&self, name: &'static str, args: Option<String>, ph: Phase) {
        let ev = Event {
            name,
            args,
            tid: self.tid(),
            ts_us: self.ts_us(),
            ph,
        };
        lock_or_recover(&self.events).push(ev);
    }
}

/// Handle every instrumented layer records into.
///
/// Disabled sinks ([`TraceSink::disabled`] / `Default`) hold no
/// allocation at all — `inner` is `None` — so threading one through the
/// pipeline costs a pointer-sized `Option` check per call site.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceSink {
    /// A sink that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A live sink collecting spans, counters and histograms.
    pub fn enabled() -> Self {
        TraceSink {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                tids: Mutex::new((HashMap::new(), 0)),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it closes (emits its `End` event) when the returned
    /// guard drops, which guarantees begin/end balance even on early
    /// returns. Prefer the [`span!`] macro, which attaches arguments.
    #[must_use = "the span ends when this guard is dropped"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, None)
    }

    /// Open a span with `key=value` arguments. The closure only runs when
    /// the sink is enabled, so argument formatting is free when tracing
    /// is off.
    #[must_use = "the span ends when this guard is dropped"]
    pub fn span_args(&self, name: &'static str, args: impl FnOnce() -> String) -> SpanGuard {
        if self.inner.is_some() {
            self.span_with(name, Some(args()))
        } else {
            SpanGuard { inner: None, name }
        }
    }

    fn span_with(&self, name: &'static str, args: Option<String>) -> SpanGuard {
        if let Some(inner) = &self.inner {
            inner.push(name, args, Phase::Begin);
            SpanGuard {
                inner: Some(Arc::clone(inner)),
                name,
            }
        } else {
            SpanGuard { inner: None, name }
        }
    }

    /// Increment the monotonic counter `name` by `v`.
    pub fn add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            let mut g = lock_or_recover(&inner.counters);
            if let Some(c) = g.get_mut(name) {
                *c += v;
            } else {
                g.insert(name.to_string(), v);
            }
        }
    }

    /// Raise the high-watermark counter `name` to `v` if `v` exceeds its
    /// current value (insert at `v` when absent). Watermark counters share
    /// the counter namespace, so they flow through [`counters`], the stage
    /// report and the Prometheus exporter like any monotonic counter —
    /// `mem.peak_bytes` and the per-stage `stage.*.peak_bytes` use this.
    ///
    /// [`counters`]: TraceSink::counters
    pub fn set_max(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            let mut g = lock_or_recover(&inner.counters);
            if let Some(c) = g.get_mut(name) {
                *c = (*c).max(v);
            } else {
                g.insert(name.to_string(), v);
            }
        }
    }

    /// Record one sample into the histogram `name`.
    pub fn record(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            let mut g = lock_or_recover(&inner.hists);
            if let Some(h) = g.get_mut(name) {
                h.record(v);
            } else {
                let mut h = Histogram::default();
                h.record(v);
                g.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of counter `name` (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| lock_or_recover(&i.counters).get(name).copied())
            .unwrap_or(0)
    }

    /// Snapshot of all counters (empty when disabled).
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .as_ref()
            .map(|i| lock_or_recover(&i.counters).clone())
            .unwrap_or_default()
    }

    /// Snapshot of all histograms (empty when disabled).
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.inner
            .as_ref()
            .map(|i| lock_or_recover(&i.hists).clone())
            .unwrap_or_default()
    }

    /// Snapshot of the raw span events (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|i| lock_or_recover(&i.events).clone())
            .unwrap_or_default()
    }

    /// Aggregate closed spans by hierarchical path (`sym_eig/sbr_wy/panel`),
    /// in order of first appearance.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        aggregate_spans(&self.events())
    }
}

/// RAII guard returned by [`TraceSink::span`]; emits the span's `End`
/// event on drop.
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.push(self.name, None, Phase::End);
        }
    }
}

/// Aggregated statistics for one span path.
#[derive(Clone, Debug)]
pub struct SpanTotal {
    /// `/`-joined path from the thread-local root, e.g. `sym_eig/sbr_wy`.
    pub path: String,
    pub depth: usize,
    pub count: u64,
    pub total_us: f64,
}

fn aggregate_spans(events: &[Event]) -> Vec<SpanTotal> {
    // Events are pushed under one mutex, so the global order preserves each
    // thread's begin/end order; replay a stack per tid.
    let mut stacks: HashMap<u32, Vec<(String, f64)>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut agg: HashMap<String, (u64, f64, usize)> = HashMap::new();
    for ev in events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.ph {
            Phase::Begin => {
                let path = match stack.last() {
                    Some((parent, _)) => format!("{parent}/{}", ev.name),
                    None => ev.name.to_string(),
                };
                // first-appearance order is begin order, so parents list
                // before their children in the report
                agg.entry(path.clone()).or_insert_with(|| {
                    order.push(path.clone());
                    (0, 0.0, path.matches('/').count())
                });
                stack.push((path, ev.ts_us));
            }
            Phase::End => {
                // `begin` recorded the path, so the entry exists; a
                // malformed event stream degrades to dropping the sample.
                if let Some((path, t_begin)) = stack.pop() {
                    if let Some(e) = agg.get_mut(&path) {
                        e.0 += 1;
                        e.1 += ev.ts_us - t_begin;
                    }
                }
            }
        }
    }
    order
        .into_iter()
        .map(|path| {
            let (count, total_us, depth) = agg[&path];
            SpanTotal {
                path,
                depth,
                count,
                total_us,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- exporters

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `key=value key2=value2` span args as a JSON object, emitting
/// numeric values unquoted.
fn args_to_json(args: &str) -> String {
    let mut out = String::from("{");
    for (i, pair) in args.split_whitespace().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match pair.split_once('=') {
            Some((k, v)) => {
                out.push_str(&format!("\"{}\":", json_escape(k)));
                if v.parse::<f64>().is_ok() {
                    out.push_str(v);
                } else {
                    out.push_str(&format!("\"{}\"", json_escape(v)));
                }
            }
            None => out.push_str(&format!("\"arg{i}\":\"{}\"", json_escape(pair))),
        }
    }
    out.push('}');
    out
}

impl TraceSink {
    /// Export the timeline as Chrome `trace_event` JSON — load the file at
    /// <https://ui.perfetto.dev> or `chrome://tracing`. Span events become
    /// `ph:"B"/"E"` pairs; counters are appended as `ph:"C"` events.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let counters = self.counters();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut last_ts = 0.0f64;
        for ev in &events {
            if !first {
                out.push(',');
            }
            first = false;
            last_ts = last_ts.max(ev.ts_us);
            let ph = match ev.ph {
                Phase::Begin => "B",
                Phase::End => "E",
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                json_escape(ev.name),
                ph,
                ev.ts_us,
                ev.tid
            ));
            if let Some(args) = &ev.args {
                out.push_str(&format!(",\"args\":{}", args_to_json(args)));
            }
            out.push('}');
        }
        for (name, v) in &counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{v}}}}}",
                json_escape(name),
                last_ts
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Human-readable report: the span tree with call counts and total
    /// time, then counters, then histograms.
    pub fn stage_report(&self) -> String {
        let mut out = String::new();
        let totals = self.span_totals();
        if !totals.is_empty() {
            out.push_str("spans (total time, calls):\n");
            for t in &totals {
                let name = t.path.rsplit('/').next().unwrap_or(&t.path);
                out.push_str(&format!(
                    "  {:indent$}{:<28} {:>12.3} ms  ×{}\n",
                    "",
                    name,
                    t.total_us / 1e3,
                    t.count,
                    indent = 2 * t.depth
                ));
            }
        }
        let counters = self.counters();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &counters {
                out.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        let hists = self.histograms();
        if !hists.is_empty() {
            out.push_str("histograms (count / mean / min / max):\n");
            for (k, h) in &hists {
                out.push_str(&format!(
                    "  {:<40} {} / {:.1} / {} / {}\n",
                    k,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(trace sink empty or disabled)\n");
        }
        out
    }

    /// Prometheus text exposition: span seconds/calls, counters, and
    /// cumulative histogram buckets.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let totals = self.span_totals();
        if !totals.is_empty() {
            out.push_str("# TYPE tcevd_span_seconds_total counter\n");
            for t in &totals {
                out.push_str(&format!(
                    "tcevd_span_seconds_total{{span=\"{}\"}} {:.9}\n",
                    t.path,
                    t.total_us / 1e6
                ));
            }
            out.push_str("# TYPE tcevd_span_calls_total counter\n");
            for t in &totals {
                out.push_str(&format!(
                    "tcevd_span_calls_total{{span=\"{}\"}} {}\n",
                    t.path, t.count
                ));
            }
        }
        let counters = self.counters();
        // Per-job service counters (`serve.job.<job>.<event>`, tallied by
        // `tcevd-serve`) render as a labeled family so a scrape can group
        // and filter by job; everything else stays in the generic family.
        let (job_counters, counters): (Vec<_>, Vec<_>) = counters
            .into_iter()
            .partition(|(k, _)| k.starts_with("serve.job."));
        if !counters.is_empty() {
            out.push_str("# TYPE tcevd_counter_total counter\n");
            for (k, v) in &counters {
                out.push_str(&format!("tcevd_counter_total{{name=\"{k}\"}} {v}\n"));
            }
        }
        if !job_counters.is_empty() {
            out.push_str("# TYPE tcevd_serve_job_total counter\n");
            for (k, v) in &job_counters {
                let rest = k.trim_start_matches("serve.job.");
                // the final dot-segment is the event; the job name may
                // itself contain dots
                let (job, event) = match rest.rsplit_once('.') {
                    Some(split) => split,
                    None => (rest, "event"),
                };
                out.push_str(&format!(
                    "tcevd_serve_job_total{{job=\"{job}\",event=\"{event}\"}} {v}\n"
                ));
            }
        }
        let hists = self.histograms();
        if !hists.is_empty() {
            out.push_str("# TYPE tcevd_hist histogram\n");
            for (k, h) in &hists {
                let mut cum = 0u64;
                for (i, b) in h.buckets.iter().enumerate() {
                    if *b == 0 {
                        continue;
                    }
                    cum += b;
                    // bucket i holds values of bit length i, i.e. v ≤ 2^i − 1
                    let le = (1u64 << i) - 1;
                    out.push_str(&format!(
                        "tcevd_hist_bucket{{name=\"{k}\",le=\"{le}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "tcevd_hist_bucket{{name=\"{k}\",le=\"+Inf\"}} {}\n",
                    h.count
                ));
                out.push_str(&format!("tcevd_hist_sum{{name=\"{k}\"}} {}\n", h.sum));
                out.push_str(&format!("tcevd_hist_count{{name=\"{k}\"}} {}\n", h.count));
            }
        }
        out
    }
}

/// Open a span on `$sink` with optional `key = value` arguments; bare
/// identifiers expand to `name = name`.
///
/// ```
/// use tcevd_trace::{span, TraceSink};
/// let sink = TraceSink::enabled();
/// let n = 512;
/// let b = 32;
/// let _g = span!(sink, "sbr_wy", n, b, nb = 256);
/// ```
#[macro_export]
macro_rules! span {
    ($sink:expr, $name:expr $(,)?) => {
        $sink.span($name)
    };
    ($sink:expr, $name:expr, $($key:ident $(= $val:expr)?),+ $(,)?) => {
        $sink.span_args($name, || {
            let mut __s = ::std::string::String::new();
            $(
                $crate::__span_arg!(__s, $key $(, $val)?);
            )+
            __s
        })
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __span_arg {
    ($s:ident, $key:ident) => {
        $crate::__span_arg!($s, $key, $key)
    };
    ($s:ident, $key:ident, $val:expr) => {{
        if !$s.is_empty() {
            $s.push(' ');
        }
        $s.push_str(concat!(stringify!($key), "="));
        $s.push_str(&::std::format!("{}", $val));
    }};
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert_and_unallocated() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        // `inner` is None: no Arc, no Vec, no map — structurally zero
        // allocations. All operations are no-ops.
        {
            let _g = span!(sink, "sym_eig", n = 4096);
            sink.add("gemm_flops", 123);
            sink.record("panel_rows", 7);
        }
        assert_eq!(sink.counter("gemm_flops"), 0);
        assert!(sink.counters().is_empty());
        assert!(sink.histograms().is_empty());
        assert!(sink.events().is_empty());
        assert_eq!(
            std::mem::size_of::<TraceSink>(),
            std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn span_args_closure_not_called_when_disabled() {
        let sink = TraceSink::disabled();
        let mut called = false;
        {
            let _g = sink.span_args("x", || {
                called = true;
                String::new()
            });
        }
        assert!(!called, "arg formatting must be skipped when disabled");
    }

    #[test]
    fn spans_nest_and_balance() {
        let sink = TraceSink::enabled();
        {
            let _a = span!(sink, "outer", n = 8);
            {
                let _b = span!(sink, "inner");
            }
            {
                let _b = span!(sink, "inner");
            }
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 6);
        let begins = evs.iter().filter(|e| e.ph == Phase::Begin).count();
        assert_eq!(begins, 3);
        let totals = sink.span_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].path, "outer");
        assert_eq!(totals[1].path, "outer/inner");
        assert_eq!(totals[1].count, 2);
        assert_eq!(totals[1].depth, 1);
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let sink = TraceSink::enabled();
        sink.add("flops", 10);
        sink.add("flops", 32);
        sink.record("rows", 0);
        sink.record("rows", 3);
        sink.record("rows", 1000);
        assert_eq!(sink.counter("flops"), 42);
        let h = &sink.histograms()["rows"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1003);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // the 0 sample
        assert_eq!(h.buckets[2], 1); // 3 ∈ [2, 4)
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn set_max_is_a_high_watermark() {
        let sink = TraceSink::enabled();
        sink.set_max("mem.peak_bytes", 100);
        sink.set_max("mem.peak_bytes", 40); // lower: no effect
        assert_eq!(sink.counter("mem.peak_bytes"), 100);
        sink.set_max("mem.peak_bytes", 250);
        assert_eq!(sink.counter("mem.peak_bytes"), 250);
        // watermarks surface through the standard exporters
        assert!(sink.stage_report().contains("mem.peak_bytes"));
        assert!(sink
            .prometheus_text()
            .contains("tcevd_counter_total{name=\"mem.peak_bytes\"} 250"));
        // disabled sinks stay inert
        let off = TraceSink::disabled();
        off.set_max("mem.peak_bytes", 9);
        assert_eq!(off.counter("mem.peak_bytes"), 0);
    }

    #[test]
    fn chrome_export_is_valid_json_with_balanced_events() {
        let sink = TraceSink::enabled();
        {
            let _a = span!(sink, "root", n = 2, label = "x\"y");
            let _b = span!(sink, "child");
        }
        sink.add("c", 5);
        let parsed = crate::json::parse(&sink.chrome_trace_json()).expect("valid JSON");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let b = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .count();
        let e = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .count();
        assert_eq!(b, e);
        assert_eq!(b, 2);
        let c = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .count();
        assert_eq!(c, 1);
    }

    #[test]
    fn exporters_cover_all_sections() {
        let sink = TraceSink::enabled();
        {
            let _a = span!(sink, "stage");
        }
        sink.add("items", 3);
        sink.record("sizes", 17);
        let report = sink.stage_report();
        assert!(report.contains("stage"));
        assert!(report.contains("items"));
        assert!(report.contains("sizes"));
        let prom = sink.prometheus_text();
        assert!(prom.contains("tcevd_span_seconds_total{span=\"stage\"}"));
        assert!(prom.contains("tcevd_counter_total{name=\"items\"} 3"));
        assert!(prom.contains("tcevd_hist_count{name=\"sizes\"} 1"));
    }

    #[test]
    fn clone_shares_state() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        clone.add("x", 7);
        assert_eq!(sink.counter("x"), 7);
    }

    #[test]
    fn per_job_serve_counters_render_as_labeled_family() {
        let sink = TraceSink::enabled();
        sink.add("serve.jobs_submitted", 3);
        sink.add("serve.job.chaos-17.completed", 1);
        sink.add("serve.job.a.b.retried", 2); // job name may contain dots
        let prom = sink.prometheus_text();
        assert!(prom.contains("tcevd_counter_total{name=\"serve.jobs_submitted\"} 3"));
        assert!(prom.contains("# TYPE tcevd_serve_job_total counter"));
        assert!(prom.contains("tcevd_serve_job_total{job=\"chaos-17\",event=\"completed\"} 1"));
        assert!(prom.contains("tcevd_serve_job_total{job=\"a.b\",event=\"retried\"} 2"));
        // the per-job rows must not also appear in the generic family
        assert!(!prom.contains("tcevd_counter_total{name=\"serve.job."));
    }
}
