//! Minimal JSON parser — enough to validate the Chrome trace exporter's
//! output in tests without an external serde dependency (the build image
//! has no registry access). Supports the full JSON grammar except for
//! `\u` surrogate pairs (kept as-is after decoding each escape).

/// Parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().expect("checked non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\n","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("b").unwrap().get("e").unwrap(), &Value::Null);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }
}
